package wal

import (
	"fmt"
	"path/filepath"
	"testing"
)

// TestWALAppendSteadyStateAllocs is the CI allocation gate for the
// append hot path: encoding rides a pooled scratch and the frame leaves
// in one write, so a steady-state append allocates NOTHING. Runs with
// the pool checker on (TestMain), like the codec gates.
func TestWALAppendSteadyStateAllocs(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	l, err := Open(dir, Config{Sync: SyncNever, SegmentSize: 1 << 30}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	payload := []byte("a typical store record: op byte, ids, timestamps, payload bytes")
	enc := func(dst []byte) []byte { return append(dst, payload...) }
	for i := 0; i < 16; i++ { // warm the pool and the file
		if err := l.Append(enc); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := l.Append(enc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("WAL append allocates %.1f times per record; the budget is zero", allocs)
	}
}

// BenchmarkWALAppend measures one 256-byte record append per op under
// each sync policy: nosync is the raw encode+write path (the allocation
// gate reads against this), group is the production default (the fsync
// cost amortizes across the commit window), always is the
// one-fsync-per-record worst case.
func BenchmarkWALAppend(b *testing.B) {
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i)
	}
	enc := func(dst []byte) []byte { return append(dst, payload...) }
	for _, mode := range []struct {
		name string
		sync SyncPolicy
	}{{"nosync", SyncNever}, {"group", SyncInterval}, {"always", SyncAlways}} {
		b.Run(mode.name, func(b *testing.B) {
			dir := filepath.Join(b.TempDir(), "wal")
			l, err := Open(dir, Config{Sync: mode.sync, SegmentSize: 1 << 30}, nil)
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l.Append(enc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWALRecovery measures a full Open over a 4096-record log —
// the recovery-replay cost a restarting dispatcher pays before serving.
func BenchmarkWALRecovery(b *testing.B) {
	dir := filepath.Join(b.TempDir(), "wal")
	const records = 4096
	l, err := Open(dir, Config{Sync: SyncNever, SegmentSize: 1 << 20}, nil)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 256)
	enc := func(dst []byte) []byte { return append(dst, payload...) }
	for i := 0; i < records; i++ {
		if err := l.Append(enc); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		l, err := Open(dir, Config{Sync: SyncNever, SegmentSize: 1 << 20}, func(rec []byte) error {
			n++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if n != records {
			b.Fatal(fmt.Errorf("replayed %d records, want %d", n, records))
		}
		if err := l.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "rec/s")
}
