// Package loadgen reimplements the paper's measurement tool: "a test
// client that can ramp up number of connections and record statistical
// data. The test client runs with a specified number of connections
// (clients) and keeps sending echo message (packets) for one minute. It
// returns statistics such as how many calls were made. Essentially it is
// very similar to the ping command." (§4.3)
//
// Each simulated client is a goroutine with its own connection(s); calls
// that complete count as transmitted, calls that fail for any reason
// (refused connections, timeouts, full queues, faults) count as "packets
// not sent" — the two series of Figure 4. Rates are normalized to
// messages/minute for Figures 5 and 6. Running on a virtual clock, a
// one-minute run takes milliseconds of wall time.
package loadgen

import (
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/stats"
)

// Op performs one echo exchange for the given client. It returns nil when
// the message made it (transmitted) and an error when it was lost.
// Implementations must be safe for concurrent use across clients.
type Op func(clientID, seq int) error

// Config describes one run of the test client.
type Config struct {
	// Clock paces the run (virtual in experiments).
	Clock clock.Clock
	// Clients is the number of concurrent clients (connections).
	Clients int
	// Duration is the measured interval; the paper uses one minute.
	Duration time.Duration
	// ThinkTime is the per-client pause between calls, modeling the
	// test machine's per-thread overhead (2004 hardware ran hundreds
	// of client threads on one CPU). 0 means back-to-back.
	ThinkTime time.Duration
	// FailureBackoff is an extra pause after a failed call so
	// immediately-failing errors (refused, device-queue-full) do not
	// spin; timeouts already consume their own time. Default 50ms.
	FailureBackoff time.Duration
	// Ramp staggers client start times uniformly across this window,
	// like the paper's connection ramp-up. Default Duration/20.
	Ramp time.Duration
	// Series labels the resulting report.
	Series string
}

// Run executes the workload and collects one report row.
func Run(cfg Config, op Op) stats.RunReport {
	if cfg.Clock == nil {
		cfg.Clock = clock.Wall
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Minute
	}
	if cfg.FailureBackoff < 0 {
		cfg.FailureBackoff = 0
	} else if cfg.FailureBackoff == 0 {
		cfg.FailureBackoff = 50 * time.Millisecond
	}
	if cfg.Ramp == 0 {
		cfg.Ramp = cfg.Duration / 20
	}

	var (
		transmitted stats.Counter
		notSent     stats.Counter
		rtt         stats.Histogram
	)
	clk := cfg.Clock
	start := clk.Now()
	deadline := start.Add(cfg.Duration)

	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Stagger start within the ramp window.
			if cfg.Ramp > 0 && cfg.Clients > 1 {
				clk.Sleep(cfg.Ramp * time.Duration(id) / time.Duration(cfg.Clients))
			}
			for seq := 0; ; seq++ {
				now := clk.Now()
				if !now.Before(deadline) {
					return
				}
				callStart := now
				err := op(id, seq)
				if err != nil {
					notSent.Inc()
					if cfg.FailureBackoff > 0 {
						clk.Sleep(cfg.FailureBackoff)
					}
				} else {
					transmitted.Inc()
					rtt.Observe(clk.Since(callStart))
				}
				if cfg.ThinkTime > 0 {
					clk.Sleep(cfg.ThinkTime)
				}
			}
		}(c)
	}
	wg.Wait()

	return stats.RunReport{
		Series:      cfg.Series,
		Clients:     cfg.Clients,
		Elapsed:     clk.Since(start),
		Transmitted: transmitted.Value(),
		NotSent:     notSent.Value(),
		MeanRTT:     rtt.Mean(),
		P99RTT:      rtt.Quantile(0.99),
	}
}
