package loadgen

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
)

func TestAllSuccessesCounted(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	defer clk.Stop()
	report := Run(Config{
		Clock:     clk,
		Clients:   4,
		Duration:  10 * time.Second,
		ThinkTime: time.Second,
		Series:    "ok",
	}, func(clientID, seq int) error {
		clk.Sleep(10 * time.Millisecond)
		return nil
	})
	if report.NotSent != 0 {
		t.Fatalf("NotSent = %d", report.NotSent)
	}
	// Each client: ~10s / (10ms + 1s) ≈ 9-10 calls, 4 clients.
	if report.Transmitted < 20 || report.Transmitted > 50 {
		t.Fatalf("Transmitted = %d, want ≈ 36-40", report.Transmitted)
	}
	if report.Clients != 4 || report.Series != "ok" {
		t.Fatalf("report = %+v", report)
	}
	if report.MeanRTT < 10*time.Millisecond {
		t.Fatalf("MeanRTT = %v", report.MeanRTT)
	}
}

func TestFailuresCountAsNotSent(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	defer clk.Stop()
	boom := errors.New("boom")
	report := Run(Config{
		Clock:          clk,
		Clients:        2,
		Duration:       5 * time.Second,
		FailureBackoff: 500 * time.Millisecond,
		Series:         "fail",
	}, func(clientID, seq int) error { return boom })
	if report.Transmitted != 0 {
		t.Fatalf("Transmitted = %d", report.Transmitted)
	}
	// Each failure costs ~500ms backoff: ≈10 per client over 5s.
	if report.NotSent < 10 || report.NotSent > 30 {
		t.Fatalf("NotSent = %d, want ≈ 20", report.NotSent)
	}
	if report.LossRatio() != 1 {
		t.Fatalf("LossRatio = %v", report.LossRatio())
	}
}

func TestMixedOutcomes(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	defer clk.Stop()
	var n atomic.Int64
	report := Run(Config{
		Clock:          clk,
		Clients:        1,
		Duration:       4 * time.Second,
		ThinkTime:      100 * time.Millisecond,
		FailureBackoff: 100 * time.Millisecond,
	}, func(clientID, seq int) error {
		if n.Add(1)%2 == 0 {
			return errors.New("every other call fails")
		}
		return nil
	})
	if report.Transmitted == 0 || report.NotSent == 0 {
		t.Fatalf("report = %+v", report)
	}
	diff := report.Transmitted - report.NotSent
	if diff < -2 || diff > 2 {
		t.Fatalf("transmitted=%d notSent=%d, want ≈ equal", report.Transmitted, report.NotSent)
	}
}

func TestClientIDsDistinct(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	defer clk.Stop()
	seen := make([]atomic.Int64, 8)
	Run(Config{Clock: clk, Clients: 8, Duration: time.Second, ThinkTime: 100 * time.Millisecond},
		func(clientID, seq int) error {
			seen[clientID].Add(1)
			return nil
		})
	for i := range seen {
		if seen[i].Load() == 0 {
			t.Fatalf("client %d never ran", i)
		}
	}
}

func TestRampStaggersStarts(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	defer clk.Stop()
	start := clk.Now()
	var maxStart atomic.Int64
	Run(Config{
		Clock:    clk,
		Clients:  10,
		Duration: 2 * time.Second,
		Ramp:     time.Second,
	}, func(clientID, seq int) error {
		if seq == 0 {
			off := clk.Since(start)
			for {
				cur := maxStart.Load()
				if int64(off) <= cur || maxStart.CompareAndSwap(cur, int64(off)) {
					break
				}
			}
		}
		clk.Sleep(50 * time.Millisecond)
		return nil
	})
	if time.Duration(maxStart.Load()) < 500*time.Millisecond {
		t.Fatalf("latest first-call at %v, want ramped beyond 500ms", time.Duration(maxStart.Load()))
	}
}

func TestZeroClients(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	defer clk.Stop()
	report := Run(Config{Clock: clk, Clients: 0, Duration: time.Second}, func(int, int) error { return nil })
	if report.Transmitted != 0 || report.NotSent != 0 {
		t.Fatalf("report = %+v", report)
	}
}
