package netsim

// Firewall is a per-host admission policy for *inbound* connections.
// Outbound connections are always allowed — the paper's premise is
// institutional firewalls that "allow only outgoing connections", which is
// exactly why peers behind them need the WS-Dispatcher and WS-MsgBox.
//
// A blocked inbound SYN is dropped silently (the dialer times out) rather
// than refused, matching default-deny firewall behaviour and producing the
// long stalls seen in Figure 6's "response blocked" series.
type Firewall struct {
	// BlockInbound drops every inbound connection attempt unless the
	// dialing host is named in AllowFrom.
	BlockInbound bool
	// AllowFrom lists peer host names exempt from BlockInbound (e.g. a
	// DMZ dispatcher allowed to reach an internal service).
	AllowFrom []string
}

// Open is the policy of a host with no inbound filtering.
func Open() Firewall { return Firewall{} }

// OutboundOnly is the paper's institutional firewall: nothing comes in.
func OutboundOnly() Firewall { return Firewall{BlockInbound: true} }

// OutboundOnlyExcept blocks inbound connections except from the named
// hosts.
func OutboundOnlyExcept(hosts ...string) Firewall {
	return Firewall{BlockInbound: true, AllowFrom: hosts}
}

// admits reports whether an inbound connection from src passes the policy.
func (f Firewall) admits(src string) bool {
	if !f.BlockInbound {
		return true
	}
	for _, h := range f.AllowFrom {
		if h == src {
			return true
		}
	}
	return false
}
