package netsim

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
)

// mss is the segment size writes are chunked into, so large bodies stream
// through the bandwidth model instead of arriving as one burst.
const mss = 1460

// Conn is one endpoint of a simulated TCP connection. It implements
// net.Conn. Writes are paced by the sender's up-link token bucket (the
// writer blocks for the serialization time, so a saturated 288 kbps uplink
// back-pressures exactly like a real socket send buffer); delivered
// segments become readable at sender-serialization + receiver-serialization
// + propagation (+ loss retransmission penalty).
type Conn struct {
	network    *Network
	localHost  *Host
	remoteHost *Host
	localAddr  Addr
	remoteAddr Addr

	rd   *pipeDir // segments arriving at this endpoint
	peer *Conn

	// rt is Read's wait timer, created on the first wait and re-armed
	// with Reset for the life of the connection (reads are sequential —
	// one goroutine per connection end, as every consumer in this
	// codebase uses net.Conn). Stale fires left over from a lost
	// Stop race are harmless: the loop re-checks arrival, deadline, and
	// close state on every wake.
	rt *clock.Timer

	wmu       sync.Mutex // serializes writers
	closeOnce sync.Once
	closed    atomic.Bool

	rdl deadlineVar
	wdl deadlineVar
}

// newConnPair wires two endpoints of an established connection.
func newConnPair(nw *Network, dialer, acceptor *Host, dialerAddr, acceptorAddr Addr) (*Conn, *Conn) {
	a := &Conn{
		network: nw, localHost: dialer, remoteHost: acceptor,
		localAddr: dialerAddr, remoteAddr: acceptorAddr,
		rd: newPipeDir(),
	}
	b := &Conn{
		network: nw, localHost: acceptor, remoteHost: dialer,
		localAddr: acceptorAddr, remoteAddr: dialerAddr,
		rd: newPipeDir(),
	}
	a.peer = b
	b.peer = a
	return a, b
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.localAddr }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.remoteAddr }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error {
	c.rdl.set(t)
	c.wdl.set(t)
	c.rd.wake()
	return nil
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.rdl.set(t)
	c.rd.wake()
	return nil
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.wdl.set(t)
	return nil
}

// Read implements net.Conn. It blocks until in-flight data arrives (per
// the simulated schedule), the peer closes (io.EOF after draining), the
// read deadline expires, or the connection is closed locally.
func (c *Conn) Read(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, nil
	}
	clk := c.network.clk
	for {
		if c.closed.Load() {
			return 0, ErrClosed
		}
		now := clk.Now()
		if dl := c.rdl.get(); !dl.IsZero() && !now.Before(dl) {
			return 0, &timeoutError{op: "read from " + c.remoteAddr.String()}
		}

		n, eof, nextArrival, sig := c.rd.pop(b, now)
		if n > 0 {
			return n, nil
		}
		if eof {
			return 0, io.EOF
		}

		// Nothing readable yet: wait for the earliest of new-data
		// signal, scheduled arrival, or read deadline.
		waitUntil := nextArrival
		if dl := c.rdl.get(); !dl.IsZero() && (waitUntil.IsZero() || dl.Before(waitUntil)) {
			waitUntil = dl
		}
		if waitUntil.IsZero() {
			<-sig
			continue
		}
		if c.rt == nil {
			c.rt = clk.NewTimer(waitUntil.Sub(now))
		} else {
			c.rt.Reset(waitUntil.Sub(now))
		}
		select {
		case <-sig:
			if !c.rt.Stop() {
				// Already fired (or firing): clear any delivered value so
				// the next wait doesn't wake spuriously. A value that
				// lands after this drain just costs one extra loop pass.
				select {
				case <-c.rt.C:
				default:
				}
			}
		case <-c.rt.C:
		}
	}
}

// Write implements net.Conn. The call returns once the last byte has been
// serialized onto the local up-link; it fails fast when the link's device
// queue is full or the write deadline would expire before serialization.
func (c *Conn) Write(b []byte) (int, error) {
	if c.closed.Load() {
		return 0, ErrClosed
	}
	if c.peer.closed.Load() {
		return 0, fmt.Errorf("write to %s: broken pipe", c.remoteAddr)
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()

	clk := c.network.clk
	oneWay := c.localHost.profile.Latency + c.remoteHost.profile.Latency
	written := 0
	for written < len(b) {
		if c.closed.Load() {
			return written, ErrClosed
		}
		end := written + mss
		if end > len(b) {
			end = len(b)
		}
		chunk := b[written:end]

		now := clk.Now()
		if dl := c.wdl.get(); !dl.IsZero() && !now.Before(dl) {
			return written, &timeoutError{op: "write to " + c.remoteAddr.String()}
		}

		sendDone, ok := c.localHost.up.reserve(now, len(chunk))
		if !ok {
			return written, fmt.Errorf("write to %s: %w", c.remoteAddr, errDeviceQueueFull)
		}
		if dl := c.wdl.get(); !dl.IsZero() && sendDone.After(dl) {
			// The bytes are booked onto the link but the caller
			// will not wait for them; report a timeout like a
			// socket send blocking past SO_SNDTIMEO.
			return written, &timeoutError{op: "write to " + c.remoteAddr.String()}
		}
		recvDone, ok := c.remoteHost.down.reserve(sendDone, len(chunk))
		if !ok {
			return written, fmt.Errorf("write to %s: %w", c.remoteAddr, errDeviceQueueFull)
		}
		arrival := recvDone.Add(oneWay + c.network.lose(c.localHost, c.remoteHost))

		data := make([]byte, len(chunk))
		copy(data, chunk)
		c.peer.rd.deliver(segment{arrival: arrival, data: data})

		// Sender pacing: block until the up-link has drained this
		// chunk. This is what makes concurrent clients share (and
		// saturate) the cable modem in Figure 4.
		if d := sendDone.Sub(now); d > 0 {
			clk.Sleep(d)
		}
		written = end
	}
	return written, nil
}

// Close implements net.Conn. It releases the local connection-table slot
// and sends FIN to the peer: the peer drains in-flight data, then reads
// io.EOF.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.closed.Store(true)
		c.rd.wake()
		c.peer.rd.closeWrite()
		c.localHost.releaseConn()
	})
	return nil
}

// errDeviceQueueFull models a full NIC/modem buffer: the message is
// dropped locally before ever reaching the wire.
var errDeviceQueueFull = &fullError{}

type fullError struct{}

func (*fullError) Error() string   { return "netsim: device queue full" }
func (*fullError) Timeout() bool   { return false }
func (*fullError) Temporary() bool { return true }

// segment is a scheduled chunk of bytes in flight.
type segment struct {
	arrival time.Time
	data    []byte
	off     int
}

// pipeDir is the receive side of one direction of a connection: a queue of
// scheduled segments plus a broadcast signal for state changes.
type pipeDir struct {
	mu     sync.Mutex
	segs   []segment
	head   int
	closed bool // peer sent FIN
	sig    chan struct{}
}

func newPipeDir() *pipeDir {
	return &pipeDir{sig: make(chan struct{})}
}

// pop copies available (arrived) bytes into b. It returns the byte count,
// whether the stream has ended (FIN received and fully drained), the
// arrival time of the next pending segment (zero if none), and the signal
// channel to wait on for state changes.
func (p *pipeDir) pop(b []byte, now time.Time) (n int, eof bool, nextArrival time.Time, sig chan struct{}) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for n < len(b) && p.head < len(p.segs) {
		seg := &p.segs[p.head]
		if seg.arrival.After(now) {
			break
		}
		copied := copy(b[n:], seg.data[seg.off:])
		n += copied
		seg.off += copied
		if seg.off == len(seg.data) {
			p.segs[p.head].data = nil
			p.head++
		}
	}
	if p.head > 64 && p.head*2 >= len(p.segs) {
		m := copy(p.segs, p.segs[p.head:])
		p.segs = p.segs[:m]
		p.head = 0
	}
	if n > 0 {
		return n, false, time.Time{}, nil
	}
	if p.head < len(p.segs) {
		return 0, false, p.segs[p.head].arrival, p.sig
	}
	if p.closed {
		return 0, true, time.Time{}, nil
	}
	return 0, false, time.Time{}, p.sig
}

func (p *pipeDir) deliver(seg segment) {
	p.mu.Lock()
	p.segs = append(p.segs, seg)
	p.wakeLocked()
	p.mu.Unlock()
}

func (p *pipeDir) closeWrite() {
	p.mu.Lock()
	p.closed = true
	p.wakeLocked()
	p.mu.Unlock()
}

func (p *pipeDir) wake() {
	p.mu.Lock()
	p.wakeLocked()
	p.mu.Unlock()
}

func (p *pipeDir) wakeLocked() {
	close(p.sig)
	p.sig = make(chan struct{})
}

// deadlineVar is a concurrently settable time.Time.
type deadlineVar struct {
	mu sync.Mutex
	t  time.Time
}

func (d *deadlineVar) set(t time.Time) {
	d.mu.Lock()
	d.t = t
	d.mu.Unlock()
}

func (d *deadlineVar) get() time.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.t
}
