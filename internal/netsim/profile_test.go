package netsim

import (
	"testing"
	"time"
)

func TestPaperProfilesCarryMeasuredBandwidths(t *testing.T) {
	// §4.3: the three broadbandreports.com measurements.
	cases := []struct {
		name     string
		p        Profile
		down, up float64
	}{
		{"iuLow", ProfileIULow(), 2333, 288},
		{"iuHigh", ProfileIUHigh(), 3655, 2739},
		{"inria", ProfileINRIA(), 1335, 1262},
	}
	for _, c := range cases {
		if c.p.DownKbps != c.down || c.p.UpKbps != c.up {
			t.Errorf("%s = %v/%v kbps, want %v/%v",
				c.name, c.p.DownKbps, c.p.UpKbps, c.down, c.up)
		}
		if c.p.Latency <= 0 {
			t.Errorf("%s has no latency", c.name)
		}
	}
}

func TestProfileDefaults(t *testing.T) {
	p := Profile{LossRate: 0.1}.withDefaults()
	if p.RetransmitDelay != 200*time.Millisecond {
		t.Fatalf("RetransmitDelay default = %v", p.RetransmitDelay)
	}
	if p.MaxQueue != 30*time.Second {
		t.Fatalf("MaxQueue default = %v", p.MaxQueue)
	}
	q := Profile{RetransmitDelay: time.Second, MaxQueue: time.Minute}.withDefaults()
	if q.RetransmitDelay != time.Second || q.MaxQueue != time.Minute {
		t.Fatal("explicit values overridden")
	}
}

func TestUnlimitedProfileHasNoSerializationDelay(t *testing.T) {
	tb := newTokenBucket(0, 0)
	now := time.Unix(100, 0)
	end, ok := tb.reserve(now, 1<<20)
	if !ok || !end.Equal(now) {
		t.Fatalf("unlimited reserve = %v, %v", end, ok)
	}
	if tb.queueDelay(now) != 0 {
		t.Fatal("unlimited bucket reports queue delay")
	}
}

func TestTokenBucketQueueDelayGrows(t *testing.T) {
	tb := newTokenBucket(8, 0) // 1000 B/s
	now := time.Unix(0, 0)
	tb.reserve(now, 1000) // 1s of work
	if d := tb.queueDelay(now); d != time.Second {
		t.Fatalf("queueDelay = %v, want 1s", d)
	}
	// After the backlog drains, no delay.
	if d := tb.queueDelay(now.Add(2 * time.Second)); d != 0 {
		t.Fatalf("queueDelay after drain = %v", d)
	}
}

func TestTokenBucketRefusalLeavesStateClean(t *testing.T) {
	tb := newTokenBucket(8, time.Second) // 1000 B/s, 1s queue
	now := time.Unix(0, 0)
	if _, ok := tb.reserve(now, 900); !ok {
		t.Fatal("first reservation refused")
	}
	// Next reservation starts 0.9s in the future — within the queue
	// bound — and is accepted.
	if _, ok := tb.reserve(now, 500); !ok {
		t.Fatal("second reservation refused")
	}
	// Now the queue extends 1.4s ahead: refused, and the bucket must
	// not have booked anything for the failed attempt.
	before := tb.nextFree
	if _, ok := tb.reserve(now, 100); ok {
		t.Fatal("over-bound reservation accepted")
	}
	if !tb.nextFree.Equal(before) {
		t.Fatal("refused reservation mutated the bucket")
	}
}
