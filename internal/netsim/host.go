package netsim

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Host is a simulated machine: an access link (bandwidth + latency), a
// firewall policy, a finite connection table, and a set of listeners.
//
// Host satisfies the transport dialer contract used by the HTTP layer, so
// dispatchers, services, and clients bind to a Host exactly as they would
// bind to a real network stack.
type Host struct {
	name     string
	net      *Network
	profile  Profile
	fw       Firewall
	maxConns int
	private  bool
	up       *tokenBucket
	down     *tokenBucket

	mu        sync.Mutex
	conns     int
	peakConns int
	listeners map[int]*Listener
	nextPort  int
	refused   int64
}

// Name returns the host's network-unique name.
func (h *Host) Name() string { return h.name }

// Profile returns the host's access-link profile.
func (h *Host) Profile() Profile { return h.profile }

// OpenConns returns the number of currently open connection endpoints.
func (h *Host) OpenConns() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.conns
}

// PeakConns returns the high-water mark of open connection endpoints.
func (h *Host) PeakConns() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.peakConns
}

// Refused returns how many connection attempts this host has refused
// because its connection table was full.
func (h *Host) Refused() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.refused
}

// DefaultDialTimeout models the classic TCP connect timeout after SYN
// retries (BSD-style 3 retransmissions ≈ 21 s).
const DefaultDialTimeout = 21 * time.Second

// Dial connects to addr ("host:port") with the default timeout.
func (h *Host) Dial(addr string) (net.Conn, error) {
	return h.DialTimeout(addr, DefaultDialTimeout)
}

// DialTimeout connects to addr, failing with a timeout error after at most
// timeout. Firewalled or unroutable targets consume the full timeout
// (silent SYN drop); refused connections fail after one round trip.
func (h *Host) DialTimeout(addr string, timeout time.Duration) (net.Conn, error) {
	a, err := ParseAddr(addr)
	if err != nil {
		return nil, err
	}
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	clk := h.net.clk

	// Local connection table (EMFILE-like): fails immediately.
	if !h.reserveConn() {
		return nil, fmt.Errorf("dial %s: %w", addr, ErrTooManyConns)
	}
	success := false
	defer func() {
		if !success {
			h.releaseConn()
		}
	}()

	target := h.net.Host(a.Host)
	if target == nil {
		// Name does not resolve anywhere: immediate error.
		return nil, fmt.Errorf("dial %s: %w", addr, ErrNoHost)
	}
	if target.private || !target.fw.admits(h.name) {
		// The SYN is silently dropped; the dialer gives up only
		// after its full timeout. This stall is the firewall cost
		// the paper's Figure 6 "response blocked" series pays.
		clk.Sleep(timeout)
		return nil, &timeoutError{op: "dial " + addr}
	}

	oneWay := h.profile.Latency + target.profile.Latency
	rtt := 2 * oneWay
	if rtt > timeout {
		clk.Sleep(timeout)
		return nil, &timeoutError{op: "dial " + addr}
	}

	if !target.reserveConn() {
		target.countRefused()
		clk.Sleep(rtt)
		return nil, fmt.Errorf("dial %s: %w", addr, ErrRefused)
	}
	ln := target.listenerFor(a.Port)
	if ln == nil {
		target.releaseConn()
		clk.Sleep(rtt)
		return nil, fmt.Errorf("dial %s: %w", addr, ErrRefused)
	}

	// Three-way handshake: one round trip before the connection is
	// usable by the application.
	clk.Sleep(rtt)

	local := Addr{Host: h.name, Port: h.allocPort()}
	remote := Addr{Host: a.Host, Port: a.Port}
	us, them := newConnPair(h.net, h, target, local, remote)
	if err := ln.deliver(them); err != nil {
		target.releaseConn()
		return nil, fmt.Errorf("dial %s: %w", addr, ErrRefused)
	}
	success = true
	return us, nil
}

// Listen opens a listener on the given port (0 picks an ephemeral port).
func (h *Host) Listen(port int) (*Listener, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if port == 0 {
		port = h.allocPortLocked()
	}
	if _, busy := h.listeners[port]; busy {
		return nil, fmt.Errorf("netsim: listen %s:%d: address already in use", h.name, port)
	}
	ln := newListener(h, Addr{Host: h.name, Port: port})
	h.listeners[port] = ln
	return ln, nil
}

func (h *Host) listenerFor(port int) *Listener {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.listeners[port]
}

func (h *Host) dropListener(port int) {
	h.mu.Lock()
	delete(h.listeners, port)
	h.mu.Unlock()
}

func (h *Host) reserveConn() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.conns >= h.maxConns {
		return false
	}
	h.conns++
	if h.conns > h.peakConns {
		h.peakConns = h.conns
	}
	return true
}

func (h *Host) releaseConn() {
	h.mu.Lock()
	if h.conns > 0 {
		h.conns--
	}
	h.mu.Unlock()
}

func (h *Host) countRefused() {
	h.mu.Lock()
	h.refused++
	h.mu.Unlock()
}

func (h *Host) allocPort() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.allocPortLocked()
}

func (h *Host) allocPortLocked() int {
	p := h.nextPort
	h.nextPort++
	if h.nextPort > 65535 {
		h.nextPort = 49152
	}
	return p
}
