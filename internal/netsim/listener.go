package netsim

import (
	"fmt"
	"net"

	"repro/internal/queue"
)

// DefaultBacklog is the accept-queue depth, matching the classic
// somaxconn default. Dials arriving at a full backlog are refused.
const DefaultBacklog = 128

// Listener implements net.Listener for a simulated host/port.
type Listener struct {
	host    *Host
	addr    Addr
	pending *queue.FIFO[*Conn]
}

func newListener(h *Host, addr Addr) *Listener {
	return &Listener{host: h, addr: addr, pending: queue.New[*Conn](DefaultBacklog)}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.pending.Take()
	if err != nil {
		return nil, fmt.Errorf("accept %s: %w", l.addr, ErrClosed)
	}
	return c, nil
}

// Close implements net.Listener. Connections already accepted are
// unaffected; handshakes still queued are torn down.
func (l *Listener) Close() error {
	l.host.dropListener(l.addr.Port)
	l.pending.Close()
	for _, c := range l.pending.Drain() {
		c.Close()
	}
	return nil
}

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return l.addr }

// deliver hands a completed handshake to Accept. It fails when the backlog
// is full or the listener is closed.
func (l *Listener) deliver(c *Conn) error {
	return l.pending.TryPut(c)
}
