package netsim

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
)

// testNet builds a network on a virtual clock and returns a cleanup-managed
// pair (network, clock).
func testNet(t *testing.T) (*Network, *clock.Virtual) {
	t.Helper()
	clk := clock.NewVirtual(time.Unix(0, 0))
	t.Cleanup(clk.Stop)
	return New(clk, 1), clk
}

// echoServer accepts connections and echoes bytes until EOF.
func echoServer(t *testing.T, ln net.Listener) {
	t.Helper()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				buf := make([]byte, 4096)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						if _, werr := c.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}()
		}
	}()
}

func TestParseAddr(t *testing.T) {
	a, err := ParseAddr("inria:8080")
	if err != nil {
		t.Fatal(err)
	}
	if a.Host != "inria" || a.Port != 8080 {
		t.Fatalf("ParseAddr = %+v", a)
	}
	for _, bad := range []string{"nohost", ":80", "h:", "h:notaport", "h:0", "h:70000"} {
		if _, err := ParseAddr(bad); err == nil {
			t.Fatalf("ParseAddr(%q) succeeded", bad)
		}
	}
}

func TestDialAndEcho(t *testing.T) {
	nw, _ := testNet(t)
	server := nw.AddHost("server", ProfileLAN())
	client := nw.AddHost("client", ProfileLAN())
	ln, err := server.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	echoServer(t, ln)

	conn, err := client.Dial("server:80")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("hello through the simulator")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Fatalf("echo = %q", got)
	}
}

func TestLatencyIsCharged(t *testing.T) {
	nw, clk := testNet(t)
	p := Profile{Latency: 50 * time.Millisecond}
	server := nw.AddHost("server", p)
	client := nw.AddHost("client", p)
	ln, _ := server.Listen(80)
	echoServer(t, ln)

	start := clk.Now()
	conn, err := client.Dial("server:80")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Handshake costs one RTT = 2 * (50+50)ms = 200ms.
	if got := clk.Since(start); got < 200*time.Millisecond {
		t.Fatalf("handshake took %v, want >= 200ms", got)
	}

	start = clk.Now()
	conn.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	// Echo round trip costs at least another RTT.
	if got := clk.Since(start); got < 200*time.Millisecond {
		t.Fatalf("echo RTT = %v, want >= 200ms", got)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	nw, clk := testNet(t)
	// 8 kbps = 1000 bytes/s: 2000 bytes should take ~2s to serialize.
	server := nw.AddHost("server", Profile{})
	client := nw.AddHost("client", Profile{UpKbps: 8})
	ln, _ := server.Listen(80)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		io.Copy(io.Discard, c)
	}()

	conn, err := client.Dial("server:80")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := clk.Now()
	if _, err := conn.Write(make([]byte, 2000)); err != nil {
		t.Fatal(err)
	}
	elapsed := clk.Since(start)
	if elapsed < 1900*time.Millisecond || elapsed > 2500*time.Millisecond {
		t.Fatalf("2000B over 1000B/s took %v, want ~2s", elapsed)
	}
}

func TestUplinkSharedAcrossConnections(t *testing.T) {
	nw, clk := testNet(t)
	server := nw.AddHost("server", Profile{})
	client := nw.AddHost("client", Profile{UpKbps: 8}) // 1000 B/s shared
	ln, _ := server.Listen(80)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, c)
		}
	}()

	const writers = 4
	var wg sync.WaitGroup
	start := clk.Now()
	for i := 0; i < writers; i++ {
		conn, err := client.Dial("server:80")
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		wg.Add(1)
		go func(c net.Conn) {
			defer wg.Done()
			c.Write(make([]byte, 500))
		}(conn)
	}
	wg.Wait()
	// 4 x 500B = 2000B through a shared 1000B/s bucket: ~2s total.
	if got := clk.Since(start); got < 1900*time.Millisecond {
		t.Fatalf("shared uplink drained 2000B in %v, want ~2s", got)
	}
}

func TestFirewallBlocksInboundWithTimeout(t *testing.T) {
	nw, clk := testNet(t)
	inside := nw.AddHost("inside", ProfileLAN(), WithFirewall(OutboundOnly()))
	outside := nw.AddHost("outside", ProfileLAN())
	ln, _ := inside.Listen(80)
	echoServer(t, ln)

	start := clk.Now()
	_, err := outside.DialTimeout("inside:80", 3*time.Second)
	if err == nil {
		t.Fatal("dial through firewall succeeded")
	}
	if !IsTimeout(err) {
		t.Fatalf("firewall dial error = %v, want timeout", err)
	}
	if got := clk.Since(start); got < 3*time.Second {
		t.Fatalf("firewalled dial failed after %v, want full 3s timeout", got)
	}

	// Outbound from inside still works.
	ln2, _ := outside.Listen(80)
	echoServer(t, ln2)
	if _, err := inside.Dial("outside:80"); err != nil {
		t.Fatalf("outbound dial from firewalled host failed: %v", err)
	}
}

func TestFirewallAllowFrom(t *testing.T) {
	nw, _ := testNet(t)
	inside := nw.AddHost("inside", ProfileLAN(), WithFirewall(OutboundOnlyExcept("dmz")))
	dmz := nw.AddHost("dmz", ProfileLAN())
	other := nw.AddHost("other", ProfileLAN())
	ln, _ := inside.Listen(80)
	echoServer(t, ln)

	if _, err := dmz.Dial("inside:80"); err != nil {
		t.Fatalf("allowed peer blocked: %v", err)
	}
	if _, err := other.DialTimeout("inside:80", 100*time.Millisecond); err == nil {
		t.Fatal("non-allowlisted peer connected")
	}
}

func TestPrivateHostUnroutable(t *testing.T) {
	nw, _ := testNet(t)
	applet := nw.AddHost("applet", ProfileLAN(), WithPrivateAddress())
	server := nw.AddHost("server", ProfileLAN())
	ln, _ := applet.Listen(80)
	echoServer(t, ln)

	if _, err := server.DialTimeout("applet:80", 50*time.Millisecond); !IsTimeout(err) {
		t.Fatalf("dial to private host = %v, want timeout", err)
	}
	// Private host can still dial out.
	ln2, _ := server.Listen(80)
	echoServer(t, ln2)
	if _, err := applet.Dial("server:80"); err != nil {
		t.Fatalf("private host outbound dial failed: %v", err)
	}
}

func TestDialUnknownHost(t *testing.T) {
	nw, _ := testNet(t)
	client := nw.AddHost("client", ProfileLAN())
	if _, err := client.Dial("ghost:80"); !errors.Is(err, ErrNoHost) {
		t.Fatalf("dial unknown host = %v, want ErrNoHost", err)
	}
}

func TestDialNoListenerRefused(t *testing.T) {
	nw, _ := testNet(t)
	client := nw.AddHost("client", ProfileLAN())
	nw.AddHost("server", ProfileLAN())
	if _, err := client.Dial("server:9999"); !errors.Is(err, ErrRefused) {
		t.Fatalf("dial closed port = %v, want ErrRefused", err)
	}
}

func TestConnCapRefusesExcessDials(t *testing.T) {
	nw, _ := testNet(t)
	server := nw.AddHost("server", ProfileLAN(), WithMaxConns(3))
	client := nw.AddHost("client", ProfileLAN())
	ln, _ := server.Listen(80)
	echoServer(t, ln)

	var conns []net.Conn
	for i := 0; i < 3; i++ {
		c, err := client.Dial("server:80")
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		conns = append(conns, c)
	}
	if _, err := client.Dial("server:80"); !errors.Is(err, ErrRefused) {
		t.Fatalf("4th dial = %v, want ErrRefused", err)
	}
	if server.Refused() != 1 {
		t.Fatalf("Refused = %d, want 1", server.Refused())
	}
	// Closing a connection frees a slot on the accept side only after
	// the server endpoint closes; the echo server closes on EOF.
	conns[0].Close()
	waitFor(t, func() bool { return server.OpenConns() < 3 })
	if _, err := client.Dial("server:80"); err != nil {
		t.Fatalf("dial after close failed: %v", err)
	}
	if server.PeakConns() != 3 {
		t.Fatalf("PeakConns = %d, want 3", server.PeakConns())
	}
}

func TestLocalConnCap(t *testing.T) {
	nw, _ := testNet(t)
	server := nw.AddHost("server", ProfileLAN())
	client := nw.AddHost("client", ProfileLAN(), WithMaxConns(2))
	ln, _ := server.Listen(80)
	echoServer(t, ln)
	for i := 0; i < 2; i++ {
		if _, err := client.Dial("server:80"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.Dial("server:80"); !errors.Is(err, ErrTooManyConns) {
		t.Fatalf("over-cap local dial = %v, want ErrTooManyConns", err)
	}
}

func TestReadDeadline(t *testing.T) {
	nw, clk := testNet(t)
	server := nw.AddHost("server", ProfileLAN())
	client := nw.AddHost("client", ProfileLAN())
	ln, _ := server.Listen(80)
	go ln.Accept() // accept but never write

	conn, err := client.Dial("server:80")
	if err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(clk.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 1)
	_, err = conn.Read(buf)
	if !IsTimeout(err) {
		t.Fatalf("Read past deadline = %v, want timeout", err)
	}
}

func TestWriteDeadlineOnSaturatedLink(t *testing.T) {
	nw, clk := testNet(t)
	server := nw.AddHost("server", Profile{})
	client := nw.AddHost("client", Profile{UpKbps: 8}) // 1000 B/s
	ln, _ := server.Listen(80)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		io.Copy(io.Discard, c)
	}()

	conn, err := client.Dial("server:80")
	if err != nil {
		t.Fatal(err)
	}
	conn.SetWriteDeadline(clk.Now().Add(500 * time.Millisecond))
	// 5000 bytes need 5s; the 500ms deadline must fire first.
	n, err := conn.Write(make([]byte, 5000))
	if !IsTimeout(err) {
		t.Fatalf("Write = %d, %v; want timeout", n, err)
	}
	if n >= 5000 {
		t.Fatalf("wrote all %d bytes despite deadline", n)
	}
}

func TestDeviceQueueFull(t *testing.T) {
	nw, _ := testNet(t)
	server := nw.AddHost("server", Profile{})
	// 1000 B/s with a 1s max queue: > ~1000 bytes of backlog refuses.
	client := nw.AddHost("client", Profile{UpKbps: 8, MaxQueue: time.Second})
	ln, _ := server.Listen(80)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, c)
		}
	}()
	// A single writer self-clocks (it sleeps between chunks) and can
	// never overflow the queue; concurrent writers all reserve before
	// sleeping and push the bucket past its 1s depth (~1000 bytes).
	const writers = 20
	errs := make(chan error, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		conn, err := client.Dial("server:80")
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		wg.Add(1)
		go func(c net.Conn) {
			defer wg.Done()
			_, err := c.Write(make([]byte, 1000))
			errs <- err
		}(conn)
	}
	wg.Wait()
	close(errs)
	full := 0
	for err := range errs {
		if errors.Is(err, errDeviceQueueFull) {
			full++
		} else if err != nil {
			t.Fatalf("unexpected write error: %v", err)
		}
	}
	if full == 0 {
		t.Fatal("no writer hit the device-queue-full refusal")
	}
}

func TestCloseGivesEOFAfterDrain(t *testing.T) {
	nw, _ := testNet(t)
	server := nw.AddHost("server", Profile{Latency: 10 * time.Millisecond})
	client := nw.AddHost("client", Profile{Latency: 10 * time.Millisecond})
	ln, _ := server.Listen(80)
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	conn, err := client.Dial("server:80")
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("last words"))
	conn.Close()

	srv := <-accepted
	data, err := io.ReadAll(srv)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "last words" {
		t.Fatalf("drained %q", data)
	}
}

func TestReadAfterLocalClose(t *testing.T) {
	nw, _ := testNet(t)
	server := nw.AddHost("server", ProfileLAN())
	client := nw.AddHost("client", ProfileLAN())
	ln, _ := server.Listen(80)
	echoServer(t, ln)
	conn, _ := client.Dial("server:80")
	conn.Close()
	if _, err := conn.Read(make([]byte, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Read after Close = %v, want ErrClosed", err)
	}
	if _, err := conn.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Write after Close = %v, want ErrClosed", err)
	}
}

func TestWriteToClosedPeer(t *testing.T) {
	nw, _ := testNet(t)
	server := nw.AddHost("server", ProfileLAN())
	client := nw.AddHost("client", ProfileLAN())
	ln, _ := server.Listen(80)
	accepted := make(chan net.Conn, 1)
	go func() {
		c, _ := ln.Accept()
		accepted <- c
	}()
	conn, _ := client.Dial("server:80")
	srv := <-accepted
	srv.Close()
	waitFor(t, func() bool {
		_, err := conn.Write([]byte("x"))
		return err != nil
	})
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	nw, _ := testNet(t)
	server := nw.AddHost("server", ProfileLAN())
	ln, _ := server.Listen(80)
	errCh := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		errCh <- err
	}()
	time.Sleep(5 * time.Millisecond)
	ln.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("Accept returned nil error after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Accept not unblocked by Close")
	}
}

func TestListenEphemeralAndDuplicate(t *testing.T) {
	nw, _ := testNet(t)
	h := nw.AddHost("h", ProfileLAN())
	ln, err := h.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	if ln.Addr().(Addr).Port == 0 {
		t.Fatal("ephemeral listen kept port 0")
	}
	if _, err := h.Listen(80); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Listen(80); err == nil {
		t.Fatal("duplicate Listen succeeded")
	}
}

func TestDuplicateHostPanics(t *testing.T) {
	nw, _ := testNet(t)
	nw.AddHost("dup", ProfileLAN())
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddHost did not panic")
		}
	}()
	nw.AddHost("dup", ProfileLAN())
}

func TestLossAddsRetransmitDelay(t *testing.T) {
	nw, clk := testNet(t)
	server := nw.AddHost("server", Profile{})
	client := nw.AddHost("client", Profile{LossRate: 1.0, RetransmitDelay: 300 * time.Millisecond})
	ln, _ := server.Listen(80)
	accepted := make(chan net.Conn, 1)
	go func() {
		c, _ := ln.Accept()
		accepted <- c
	}()
	conn, err := client.Dial("server:80")
	if err != nil {
		t.Fatal(err)
	}
	srv := <-accepted
	start := clk.Now()
	conn.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(srv, buf); err != nil {
		t.Fatal(err)
	}
	if got := clk.Since(start); got < 300*time.Millisecond {
		t.Fatalf("lossy delivery took %v, want >= 300ms retransmit penalty", got)
	}
}

func TestLargeTransferIntegrity(t *testing.T) {
	nw, _ := testNet(t)
	server := nw.AddHost("server", ProfileLAN())
	client := nw.AddHost("client", ProfileLAN())
	ln, _ := server.Listen(80)
	echoServer(t, ln)
	conn, err := client.Dial("server:80")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	payload := make([]byte, 64*1024)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	go conn.Write(payload)
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("corruption at byte %d: got %d want %d", i, got[i], payload[i])
		}
	}
}

func TestAddrStrings(t *testing.T) {
	a := Addr{Host: "h", Port: 80}
	if a.String() != "h:80" || a.Network() != "sim" {
		t.Fatalf("Addr = %q / %q", a.String(), a.Network())
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
