package netsim

import "time"

// Profile describes a host's access link: asymmetric bandwidth and one-way
// latency from the host to the simulated backbone. The end-to-end one-way
// delay between two hosts is the sum of their latencies; serialization goes
// through the sender's up-link bucket and the receiver's down-link bucket.
type Profile struct {
	// DownKbps and UpKbps are access-link bandwidths in kilobits per
	// second; 0 means unlimited.
	DownKbps float64
	UpKbps   float64
	// Latency is the one-way propagation delay between this host and
	// the backbone.
	Latency time.Duration
	// LossRate is the probability that a segment needs a TCP-style
	// retransmission; each loss adds RetransmitDelay to that segment's
	// arrival. 0 disables.
	LossRate float64
	// RetransmitDelay is the extra arrival delay charged per lost
	// segment (a coarse RTO model). Defaults to 200ms when LossRate > 0.
	RetransmitDelay time.Duration
	// MaxQueue bounds the access link's device queue, expressed as
	// maximum queueing time. Defaults to 30s (a deep 2004 modem buffer)
	// when bandwidth is finite.
	MaxQueue time.Duration
}

func (p Profile) withDefaults() Profile {
	if p.LossRate > 0 && p.RetransmitDelay == 0 {
		p.RetransmitDelay = 200 * time.Millisecond
	}
	if p.MaxQueue == 0 {
		p.MaxQueue = 30 * time.Second
	}
	return p
}

// The measured endpoints from §4.3 of the paper. Bandwidths are the
// paper's broadbandreports.com numbers; latencies are set so that the
// France↔US round-trip is ≈120 ms and Indiana↔Indiana is a few ms.

// ProfileINRIA is the INRIA Sophia Antipolis institutional connection:
// download 1335 kbps, upload 1262 kbps, behind the institute firewall.
func ProfileINRIA() Profile {
	return Profile{DownKbps: 1335, UpKbps: 1262, Latency: 50 * time.Millisecond}
}

// ProfileIUHigh is the Indiana University backbone connection:
// download 3655 kbps, upload 2739 kbps ("iuHight" in the paper).
func ProfileIUHigh() Profile {
	return Profile{DownKbps: 3655, UpKbps: 2739, Latency: 10 * time.Millisecond}
}

// ProfileIULow is the Bloomington home cable modem: download 2333 kbps,
// upload 288 kbps — the asymmetric "bad conditions" link of Figure 4.
func ProfileIULow() Profile {
	return Profile{DownKbps: 2333, UpKbps: 288, Latency: 15 * time.Millisecond}
}

// ProfileLAN is a fast local link for co-located services (e.g. the
// dispatcher and the registry on one machine room network).
func ProfileLAN() Profile {
	return Profile{DownKbps: 100_000, UpKbps: 100_000, Latency: 200 * time.Microsecond}
}

// ProfileUnlimited has no bandwidth or latency constraints; unit tests use
// it when they only care about plumbing.
func ProfileUnlimited() Profile { return Profile{} }
