package netsim

import (
	"sync"
	"time"
)

// tokenBucket serializes byte transmissions over a fixed-rate link using
// virtual-time reservations. Each transmission of n bytes reserves the
// interval [max(now, nextFree), max(now, nextFree) + n/rate); the link is a
// single queue, so concurrent writers naturally experience the queueing
// delay that saturates the paper's 288 kbps cable uplink in Figure 4.
//
// A maximum queue depth caps how far ahead reservations may extend; beyond
// it the transmission is refused, modeling bounded device/socket buffers
// (without the cap, virtual queueing delay would grow without limit and
// every message would eventually "arrive").
type tokenBucket struct {
	mu           sync.Mutex
	bytesPerSec  float64
	maxQueueTime time.Duration // 0 = unbounded
	nextFree     time.Time
}

// newTokenBucket builds a bucket from a rate in kilobits per second.
// kbps <= 0 means infinite bandwidth (zero serialization delay).
func newTokenBucket(kbps float64, maxQueue time.Duration) *tokenBucket {
	var bps float64
	if kbps > 0 {
		bps = kbps * 1000 / 8
	}
	return &tokenBucket{bytesPerSec: bps, maxQueueTime: maxQueue}
}

// reserve books transmission of n bytes starting no earlier than now and
// returns the time the last byte leaves the link. ok is false when the
// device queue is full, in which case nothing is booked.
func (tb *tokenBucket) reserve(now time.Time, n int) (end time.Time, ok bool) {
	if tb == nil || tb.bytesPerSec == 0 {
		return now, true
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	start := now
	if tb.nextFree.After(start) {
		start = tb.nextFree
	}
	if tb.maxQueueTime > 0 && start.Sub(now) > tb.maxQueueTime {
		return time.Time{}, false
	}
	dur := time.Duration(float64(n) / tb.bytesPerSec * float64(time.Second))
	end = start.Add(dur)
	tb.nextFree = end
	return end, true
}

// queueDelay reports how long a transmission starting now would wait before
// its first byte is serialized. Used by tests and diagnostics.
func (tb *tokenBucket) queueDelay(now time.Time) time.Duration {
	if tb == nil || tb.bytesPerSec == 0 {
		return 0
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if tb.nextFree.After(now) {
		return tb.nextFree.Sub(now)
	}
	return 0
}
