// Package netsim is an in-process virtual network used in place of the
// paper's physical testbed (INRIA Sophia Antipolis ↔ Indiana University,
// with a home cable modem and institutional firewalls).
//
// The evaluation in the paper is driven by four network mechanisms, all of
// which netsim reproduces while exposing the standard net.Conn and
// net.Listener interfaces so dispatcher and client code is identical over
// real TCP and the simulator:
//
//   - access-link bandwidth (asymmetric for the cable modem: 2333 kbps
//     down / 288 kbps up), modeled as per-host token buckets that serialize
//     every byte written;
//   - propagation delay (trans-Atlantic RTT), modeled as per-host one-way
//     latency added to segment arrival times;
//   - firewalls that admit only outgoing connections, modeled as silent
//     SYN drops (the dialer times out, exactly the behaviour that motivates
//     WS-MsgBox);
//   - finite connection capacity (file descriptors, NAT table entries,
//     accept backlogs), modeled as per-host connection caps and per-listener
//     backlogs that refuse excess dials.
//
// All blocking operations run on a clock.Clock, so a full one-minute
// paper experiment executes in milliseconds of wall time on a Virtual
// clock while keeping event ordering.
package netsim

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Addr is a simulated network address, "host:port". It implements net.Addr.
type Addr struct {
	Host string
	Port int
}

// Network implements net.Addr.
func (Addr) Network() string { return "sim" }

// String implements net.Addr.
func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.Host, a.Port) }

// ParseAddr splits "host:port" into an Addr.
func ParseAddr(s string) (Addr, error) {
	i := strings.LastIndexByte(s, ':')
	if i <= 0 || i == len(s)-1 {
		return Addr{}, fmt.Errorf("netsim: invalid address %q (want host:port)", s)
	}
	port, err := strconv.Atoi(s[i+1:])
	if err != nil || port <= 0 || port > 65535 {
		return Addr{}, fmt.Errorf("netsim: invalid port in address %q", s)
	}
	return Addr{Host: s[:i], Port: port}, nil
}

// Errors returned by dial and connection operations. Timeout-flavoured
// errors implement net.Error with Timeout() == true, mirroring how a real
// firewall (silent SYN drop) differs from an RST (connection refused).
var (
	// ErrRefused corresponds to TCP RST: no listener, full backlog, or
	// the target host is out of connection slots.
	ErrRefused = errors.New("netsim: connection refused")
	// ErrNoHost means the target name does not exist in the network.
	ErrNoHost = errors.New("netsim: no such host")
	// ErrTooManyConns means the *local* host has exhausted its
	// connection slots (EMFILE-like, fails immediately).
	ErrTooManyConns = errors.New("netsim: too many open connections")
	// ErrClosed is returned by operations on closed conns/listeners.
	ErrClosed = errors.New("netsim: use of closed connection")
)

// timeoutError is the net.Error returned when a SYN is silently dropped
// (firewalled or unroutable target) or a deadline expires.
type timeoutError struct{ op string }

func (e *timeoutError) Error() string   { return "netsim: " + e.op + " timed out" }
func (e *timeoutError) Timeout() bool   { return true }
func (e *timeoutError) Temporary() bool { return true }

// IsTimeout reports whether err is a timeout in the net.Error sense.
func IsTimeout(err error) bool {
	var t interface{ Timeout() bool }
	return errors.As(err, &t) && t.Timeout()
}
