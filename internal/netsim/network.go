package netsim

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/clock"
)

// Network is a collection of simulated hosts sharing one clock. It is safe
// for concurrent use.
type Network struct {
	clk clock.Clock

	mu    sync.Mutex
	hosts map[string]*Host
	rng   *rand.Rand
}

// New creates an empty network driven by clk. seed feeds the deterministic
// loss model; runs with equal seeds and workloads see identical drops.
func New(clk clock.Clock, seed int64) *Network {
	return &Network{
		clk:   clk,
		hosts: make(map[string]*Host),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Clock returns the clock driving this network.
func (n *Network) Clock() clock.Clock { return n.clk }

// HostOption configures a host at creation.
type HostOption func(*Host)

// WithFirewall installs a firewall policy on the host.
func WithFirewall(fw Firewall) HostOption {
	return func(h *Host) { h.fw = fw }
}

// WithMaxConns caps the number of simultaneously open connections (dials
// plus accepted) the host supports. 0 keeps DefaultMaxConns.
func WithMaxConns(n int) HostOption {
	return func(h *Host) {
		if n > 0 {
			h.maxConns = n
		}
	}
}

// WithPrivateAddress marks the host unroutable: inbound dials time out no
// matter the firewall, as for a NATed applet client with no network
// endpoint. Outbound connections still work.
func WithPrivateAddress() HostOption {
	return func(h *Host) { h.private = true }
}

// DefaultMaxConns is the per-host connection cap unless overridden: the
// classic default file-descriptor limit on 2004-era Linux.
const DefaultMaxConns = 1024

// AddHost creates and registers a host. It panics on duplicate names —
// topology construction bugs should fail loudly at setup time.
func (n *Network) AddHost(name string, p Profile, opts ...HostOption) *Host {
	p = p.withDefaults()
	h := &Host{
		name:      name,
		net:       n,
		profile:   p,
		maxConns:  DefaultMaxConns,
		up:        newTokenBucket(p.UpKbps, p.MaxQueue),
		down:      newTokenBucket(p.DownKbps, p.MaxQueue),
		listeners: make(map[int]*Listener),
		nextPort:  49152,
	}
	for _, o := range opts {
		o(h)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.hosts[name]; dup {
		panic(fmt.Sprintf("netsim: duplicate host %q", name))
	}
	n.hosts[name] = h
	return h
}

// Host returns the named host, or nil if absent.
func (n *Network) Host(name string) *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.hosts[name]
}

// lose samples the loss model for one segment traversing the two hosts'
// access links and returns the extra retransmission delay to charge.
func (n *Network) lose(src, dst *Host) time.Duration {
	var extra time.Duration
	for _, h := range [2]*Host{src, dst} {
		if h.profile.LossRate <= 0 {
			continue
		}
		n.mu.Lock()
		hit := n.rng.Float64() < h.profile.LossRate
		n.mu.Unlock()
		if hit {
			extra += h.profile.RetransmitDelay
		}
	}
	return extra
}
