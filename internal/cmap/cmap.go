// Package cmap provides a sharded, lock-striped concurrent hash map.
//
// The paper's dispatchers and registry are built on the concurrent hash map
// from Doug Lea's Concurrent Java Library (later java.util.concurrent).
// This package is the Go stand-in: a generic map striped across a fixed
// number of shards so that registry lookups on the dispatcher hot path and
// mailbox-table updates in WS-MsgBox do not contend on a single lock.
package cmap

import (
	"hash/maphash"
	"sync"
)

// shardCount is a power of two so shard selection is a mask, not a modulo.
const shardCount = 32

// Map is a concurrent hash map from string keys to values of type V.
// The zero value is not usable; construct with New.
type Map[V any] struct {
	seed   maphash.Seed
	shards [shardCount]shard[V]
}

type shard[V any] struct {
	mu sync.RWMutex
	m  map[string]V
}

// New returns an empty concurrent map.
func New[V any]() *Map[V] {
	c := &Map[V]{seed: maphash.MakeSeed()}
	for i := range c.shards {
		c.shards[i].m = make(map[string]V)
	}
	return c
}

func (c *Map[V]) shard(key string) *shard[V] {
	h := maphash.String(c.seed, key)
	return &c.shards[h&(shardCount-1)]
}

// Get returns the value stored for key and whether it was present.
func (c *Map[V]) Get(key string) (V, bool) {
	s := c.shard(key)
	s.mu.RLock()
	v, ok := s.m[key]
	s.mu.RUnlock()
	return v, ok
}

// Put stores value under key, replacing any previous value.
func (c *Map[V]) Put(key string, value V) {
	s := c.shard(key)
	s.mu.Lock()
	s.m[key] = value
	s.mu.Unlock()
}

// PutIfAbsent stores value under key only if the key is not already
// present. It returns the value that is in the map after the call and
// whether the store happened.
func (c *Map[V]) PutIfAbsent(key string, value V) (V, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.m[key]; ok {
		return existing, false
	}
	s.m[key] = value
	return value, true
}

// Delete removes key and reports whether it was present.
func (c *Map[V]) Delete(key string) bool {
	s := c.shard(key)
	s.mu.Lock()
	_, ok := s.m[key]
	delete(s.m, key)
	s.mu.Unlock()
	return ok
}

// GetOrCompute returns the value for key, computing and storing it with f
// if absent. f is called at most once per absent key and runs under the
// shard lock, so it must not re-enter the map.
func (c *Map[V]) GetOrCompute(key string, f func() V) V {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.m[key]; ok {
		return v
	}
	v := f()
	s.m[key] = v
	return v
}

// Update atomically applies f to the current value for key (or the zero
// value if absent) and stores the result. It returns the stored value.
func (c *Map[V]) Update(key string, f func(old V, present bool) V) V {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	old, ok := s.m[key]
	v := f(old, ok)
	s.m[key] = v
	return v
}

// Len returns the total number of entries. It is a snapshot: concurrent
// writers may change the count while it is being computed.
func (c *Map[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Range calls f for every entry until f returns false. Entries written
// during iteration may or may not be observed; each present key is visited
// at most once.
func (c *Map[V]) Range(f func(key string, value V) bool) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		// Copy the shard so f can call back into the map.
		entries := make(map[string]V, len(s.m))
		for k, v := range s.m {
			entries[k] = v
		}
		s.mu.RUnlock()
		for k, v := range entries {
			if !f(k, v) {
				return
			}
		}
	}
}

// Keys returns a snapshot of all keys in unspecified order.
func (c *Map[V]) Keys() []string {
	keys := make([]string, 0, c.Len())
	c.Range(func(k string, _ V) bool {
		keys = append(keys, k)
		return true
	})
	return keys
}

// Clear removes all entries.
func (c *Map[V]) Clear() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.m = make(map[string]V)
		s.mu.Unlock()
	}
}
