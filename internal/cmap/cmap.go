// Package cmap provides a sharded, lock-striped concurrent hash map.
//
// The paper's dispatchers and registry are built on the concurrent hash map
// from Doug Lea's Concurrent Java Library (later java.util.concurrent).
// This package is the Go stand-in: a generic map striped across a fixed
// number of shards so that registry lookups on the dispatcher hot path and
// mailbox-table updates in WS-MsgBox do not contend on a single lock.
package cmap

import (
	"hash/maphash"
	"sync"
)

// defaultShards is the stripe count New uses: a power of two so shard
// selection is a mask, not a modulo.
const defaultShards = 32

// maxShards bounds NewSized so a miscomputed size cannot allocate an
// absurd stripe table.
const maxShards = 4096

// Map is a concurrent hash map from string keys to values of type V.
// The zero value is not usable; construct with New or NewSized.
type Map[V any] struct {
	seed   maphash.Seed
	mask   uint64
	shards []shard[V]
}

type shard[V any] struct {
	mu sync.RWMutex
	m  map[string]V
}

// New returns an empty concurrent map with the default stripe count.
func New[V any]() *Map[V] { return NewSized[V](defaultShards) }

// NewSized returns an empty concurrent map striped across the given
// number of shards, rounded up to a power of two and clamped to
// [1, 4096]. Keys hash to a stable shard for the map's lifetime, so a
// hot structure (a dispatcher's pending-reply table, its
// per-destination queue index) can widen its striping without changing
// any ordering or visibility property; shards == 1 degenerates to a
// single-lock map, which is what contention benchmarks compare against.
func NewSized[V any](shards int) *Map[V] {
	n := 1
	for n < shards && n < maxShards {
		n <<= 1
	}
	c := &Map[V]{seed: maphash.MakeSeed(), mask: uint64(n - 1), shards: make([]shard[V], n)}
	for i := range c.shards {
		c.shards[i].m = make(map[string]V)
	}
	return c
}

func (c *Map[V]) shard(key string) *shard[V] {
	h := maphash.String(c.seed, key)
	return &c.shards[h&c.mask]
}

// Shards reports the stripe count (for tests and introspection).
func (c *Map[V]) Shards() int { return len(c.shards) }

// Get returns the value stored for key and whether it was present.
func (c *Map[V]) Get(key string) (V, bool) {
	s := c.shard(key)
	s.mu.RLock()
	v, ok := s.m[key]
	s.mu.RUnlock()
	return v, ok
}

// Put stores value under key, replacing any previous value.
func (c *Map[V]) Put(key string, value V) {
	s := c.shard(key)
	s.mu.Lock()
	s.m[key] = value
	s.mu.Unlock()
}

// PutIfAbsent stores value under key only if the key is not already
// present. It returns the value that is in the map after the call and
// whether the store happened.
func (c *Map[V]) PutIfAbsent(key string, value V) (V, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.m[key]; ok {
		return existing, false
	}
	s.m[key] = value
	return value, true
}

// GetAndDelete atomically removes key and returns the value it held.
// Exactly one of any number of concurrent claimants observes ok ==
// true; everyone else gets the zero value. This is the one-lock claim
// the reply-routing path needs: a separate Get followed by Delete lets
// two routers both observe the entry and both believe they own it.
func (c *Map[V]) GetAndDelete(key string) (V, bool) {
	s := c.shard(key)
	s.mu.Lock()
	v, ok := s.m[key]
	if ok {
		delete(s.m, key)
	}
	s.mu.Unlock()
	return v, ok
}

// Delete removes key and reports whether it was present.
func (c *Map[V]) Delete(key string) bool {
	s := c.shard(key)
	s.mu.Lock()
	_, ok := s.m[key]
	delete(s.m, key)
	s.mu.Unlock()
	return ok
}

// GetOrCompute returns the value for key, computing and storing it with f
// if absent. f is called at most once per absent key and runs under the
// shard lock, so it must not re-enter the map.
func (c *Map[V]) GetOrCompute(key string, f func() V) V {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.m[key]; ok {
		return v
	}
	v := f()
	s.m[key] = v
	return v
}

// Update atomically applies f to the current value for key (or the zero
// value if absent) and stores the result. It returns the stored value.
func (c *Map[V]) Update(key string, f func(old V, present bool) V) V {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	old, ok := s.m[key]
	v := f(old, ok)
	s.m[key] = v
	return v
}

// Len returns the total number of entries. It is a snapshot: concurrent
// writers may change the count while it is being computed.
func (c *Map[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Range calls f for every entry until f returns false. Entries written
// during iteration may or may not be observed; each present key is visited
// at most once.
func (c *Map[V]) Range(f func(key string, value V) bool) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		// Copy the shard so f can call back into the map.
		entries := make(map[string]V, len(s.m))
		for k, v := range s.m {
			entries[k] = v
		}
		s.mu.RUnlock()
		for k, v := range entries {
			if !f(k, v) {
				return
			}
		}
	}
}

// Keys returns a snapshot of all keys in unspecified order.
func (c *Map[V]) Keys() []string {
	keys := make([]string, 0, c.Len())
	c.Range(func(k string, _ V) bool {
		keys = append(keys, k)
		return true
	})
	return keys
}

// Clear removes all entries.
func (c *Map[V]) Clear() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.m = make(map[string]V)
		s.mu.Unlock()
	}
}
