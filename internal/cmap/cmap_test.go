package cmap

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGet(t *testing.T) {
	m := New[int]()
	m.Put("a", 1)
	m.Put("b", 2)
	if v, ok := m.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v; want 1, true", v, ok)
	}
	if _, ok := m.Get("missing"); ok {
		t.Fatal("Get(missing) reported present")
	}
}

func TestPutReplaces(t *testing.T) {
	m := New[string]()
	m.Put("k", "old")
	m.Put("k", "new")
	if v, _ := m.Get("k"); v != "new" {
		t.Fatalf("Get(k) = %q, want new", v)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

func TestPutIfAbsent(t *testing.T) {
	m := New[int]()
	if v, stored := m.PutIfAbsent("k", 1); !stored || v != 1 {
		t.Fatalf("first PutIfAbsent = %d, %v", v, stored)
	}
	if v, stored := m.PutIfAbsent("k", 2); stored || v != 1 {
		t.Fatalf("second PutIfAbsent = %d, %v; want 1, false", v, stored)
	}
}

func TestDelete(t *testing.T) {
	m := New[int]()
	m.Put("k", 1)
	if !m.Delete("k") {
		t.Fatal("Delete of present key returned false")
	}
	if m.Delete("k") {
		t.Fatal("Delete of absent key returned true")
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after delete", m.Len())
	}
}

func TestGetOrCompute(t *testing.T) {
	m := New[int]()
	calls := 0
	f := func() int { calls++; return 42 }
	if v := m.GetOrCompute("k", f); v != 42 {
		t.Fatalf("GetOrCompute = %d", v)
	}
	if v := m.GetOrCompute("k", f); v != 42 {
		t.Fatalf("GetOrCompute (cached) = %d", v)
	}
	if calls != 1 {
		t.Fatalf("compute called %d times, want 1", calls)
	}
}

func TestUpdate(t *testing.T) {
	m := New[int]()
	inc := func(old int, _ bool) int { return old + 1 }
	for i := 0; i < 5; i++ {
		m.Update("counter", inc)
	}
	if v, _ := m.Get("counter"); v != 5 {
		t.Fatalf("counter = %d, want 5", v)
	}
}

func TestRangeVisitsAll(t *testing.T) {
	m := New[int]()
	for i := 0; i < 100; i++ {
		m.Put(fmt.Sprintf("k%03d", i), i)
	}
	seen := map[string]bool{}
	m.Range(func(k string, v int) bool {
		if seen[k] {
			t.Fatalf("key %q visited twice", k)
		}
		seen[k] = true
		return true
	})
	if len(seen) != 100 {
		t.Fatalf("visited %d keys, want 100", len(seen))
	}
}

func TestRangeEarlyStop(t *testing.T) {
	m := New[int]()
	for i := 0; i < 50; i++ {
		m.Put(fmt.Sprintf("k%d", i), i)
	}
	visits := 0
	m.Range(func(string, int) bool {
		visits++
		return visits < 5
	})
	if visits != 5 {
		t.Fatalf("visits = %d, want 5", visits)
	}
}

func TestKeysSnapshot(t *testing.T) {
	m := New[int]()
	want := []string{"a", "b", "c"}
	for i, k := range want {
		m.Put(k, i)
	}
	got := m.Keys()
	sort.Strings(got)
	if len(got) != len(want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", got, want)
		}
	}
}

func TestClear(t *testing.T) {
	m := New[int]()
	for i := 0; i < 10; i++ {
		m.Put(fmt.Sprintf("k%d", i), i)
	}
	m.Clear()
	if m.Len() != 0 {
		t.Fatalf("Len = %d after Clear", m.Len())
	}
}

func TestConcurrentCounters(t *testing.T) {
	m := New[int]()
	const workers, perWorker = 16, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("k%d", i%7)
				m.Update(key, func(old int, _ bool) int { return old + 1 })
			}
		}()
	}
	wg.Wait()
	total := 0
	m.Range(func(_ string, v int) bool { total += v; return true })
	if total != workers*perWorker {
		t.Fatalf("total = %d, want %d", total, workers*perWorker)
	}
}

func TestConcurrentPutIfAbsentSingleWinner(t *testing.T) {
	m := New[int]()
	const workers = 32
	var wg sync.WaitGroup
	wins := make(chan int, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, stored := m.PutIfAbsent("once", w); stored {
				wins <- w
			}
		}()
	}
	wg.Wait()
	close(wins)
	count := 0
	for range wins {
		count++
	}
	if count != 1 {
		t.Fatalf("%d winners for PutIfAbsent, want exactly 1", count)
	}
}

func TestNewSizedRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {32, 32}, {100, 128},
		{4096, 4096}, {1 << 20, 4096},
	} {
		if got := NewSized[int](tc.ask).Shards(); got != tc.want {
			t.Errorf("NewSized(%d).Shards() = %d, want %d", tc.ask, got, tc.want)
		}
	}
	if got := New[int]().Shards(); got != defaultShards {
		t.Errorf("New().Shards() = %d, want %d", got, defaultShards)
	}
}

func TestSingleShardStillCorrect(t *testing.T) {
	m := NewSized[int](1)
	for i := 0; i < 64; i++ {
		m.Put(fmt.Sprintf("k%d", i), i)
	}
	if m.Len() != 64 {
		t.Fatalf("Len = %d", m.Len())
	}
	if v, ok := m.Get("k17"); !ok || v != 17 {
		t.Fatalf("Get(k17) = %d, %v", v, ok)
	}
	if v, ok := m.GetAndDelete("k17"); !ok || v != 17 {
		t.Fatalf("GetAndDelete(k17) = %d, %v", v, ok)
	}
	if _, ok := m.Get("k17"); ok {
		t.Fatal("k17 survived GetAndDelete")
	}
}

func TestGetAndDelete(t *testing.T) {
	m := New[int]()
	m.Put("k", 7)
	if v, ok := m.GetAndDelete("k"); !ok || v != 7 {
		t.Fatalf("GetAndDelete = %d, %v; want 7, true", v, ok)
	}
	if v, ok := m.GetAndDelete("k"); ok || v != 0 {
		t.Fatalf("second GetAndDelete = %d, %v; want 0, false", v, ok)
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d", m.Len())
	}
}

// Concurrent claimants of the same key: exactly one wins per Put, across
// every stripe width including the degenerate single-lock map.
func TestConcurrentGetAndDeleteSingleClaimant(t *testing.T) {
	for _, shards := range []int{1, 32} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			m := NewSized[int](shards)
			const keys, claimants = 50, 8
			for k := 0; k < keys; k++ {
				m.Put(fmt.Sprintf("k%d", k), k)
			}
			var wg sync.WaitGroup
			var claims [keys]int32
			var mu sync.Mutex
			for c := 0; c < claimants; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for k := 0; k < keys; k++ {
						if v, ok := m.GetAndDelete(fmt.Sprintf("k%d", k)); ok {
							mu.Lock()
							claims[k]++
							mu.Unlock()
							if v != k {
								t.Errorf("claimed k%d = %d", k, v)
							}
						}
					}
				}()
			}
			wg.Wait()
			for k, n := range claims {
				if n != 1 {
					t.Errorf("key k%d claimed %d times, want exactly 1", k, n)
				}
			}
		})
	}
}

// Property: a Map behaves like a plain map under any sequence of Put and
// Delete operations.
func TestQuickMatchesPlainMap(t *testing.T) {
	type op struct {
		Key    string
		Value  int
		Delete bool
	}
	f := func(ops []op) bool {
		m := New[int]()
		ref := map[string]int{}
		for _, o := range ops {
			if o.Delete {
				m.Delete(o.Key)
				delete(ref, o.Key)
			} else {
				m.Put(o.Key, o.Value)
				ref[o.Key] = o.Value
			}
		}
		if m.Len() != len(ref) {
			return false
		}
		for k, want := range ref {
			if got, ok := m.Get(k); !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
