// Package core composes the paper's components into the deployable
// WS-Dispatcher: "a complete firewall for Web Services with specialized
// functions like P.O Mailbox, message security inspection, and Registry
// service" (§4.4).
//
// A core.Server mounts, on separate ports of one host:
//
//	RPCPort    POST /rpc/<logical>   RPC-Dispatcher forwarding
//	           GET  /registry       browseable service directory
//	           GET  /wsdl/<name>    per-service WSDL metadata
//	           POST /login          single-sign-on token issue (optional)
//	MsgPort    POST /msg            MSG-Dispatcher asynchronous forwarding
//	MsgBoxPort POST /mbox[...]      co-located WS-MsgBox (optional)
//
// The same Server runs over the netsim virtual network (experiments) and
// over real TCP (cmd/wsd) — the difference is only the Listener/Dialer
// pair supplied in Config.
package core

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/auth"
	"repro/internal/clock"
	"repro/internal/dispatch/msgdisp"
	"repro/internal/dispatch/rpcdisp"
	"repro/internal/httpx"
	"repro/internal/msgbox"
	"repro/internal/registry"
	"repro/internal/reliable"
	"repro/internal/soap"
	"repro/internal/store"
)

// Config assembles a WS-Dispatcher deployment.
type Config struct {
	// Clock drives every timeout in the stack.
	Clock clock.Clock
	// HostName is the dispatcher's externally routable name, used to
	// mint its own URLs (e.g. "wsd").
	HostName string
	// Listen opens listeners on the dispatcher's host (netsim.Host's
	// Listen or a real TCP helper).
	Listen func(port int) (net.Listener, error)
	// Dialer opens outbound connections from the dispatcher's host.
	Dialer httpx.Dialer

	// RPCPort serves the RPC-Dispatcher (0 disables).
	RPCPort int
	// MsgPort serves the MSG-Dispatcher (0 disables).
	MsgPort int
	// MsgBoxPort serves a co-located WS-MsgBox (0 disables); the paper
	// notes WS-MsgBox "can be co-located with MSG-Dispatcher or run as
	// a separate service".
	MsgBoxPort int

	// Policy picks the registry balancing policy.
	Policy registry.Policy
	// RegistryFile, when set, seeds the registry from the text format.
	RegistryFile string

	// StoreDir, when set, makes messaging durable: the MSG-Dispatcher
	// gains a WAL-backed reliable courier (hold/retry surviving a
	// restart) and the co-located WS-MsgBox persists its mailboxes.
	// The courier and the mailbox each get their own store under this
	// directory ("courier", "msgbox") — they must never share one,
	// because the courier re-attempts every destination in its store
	// on Start and would try to "deliver" mailbox records.
	StoreDir string
	// Store tunes the WAL under StoreDir (Clock is overwritten).
	Store store.Options
	// Courier tunes the reliable courier (Clock is overwritten).
	Courier reliable.Config

	// RPC tunes the RPC-Dispatcher (Clock is overwritten).
	RPC rpcdisp.Config
	// Msg tunes the MSG-Dispatcher (Clock/ReturnAddress overwritten).
	Msg msgdisp.Config
	// MsgBox tunes the mailbox service (Clock/BaseURL overwritten).
	MsgBox msgbox.Config

	// Authority, when set, enables single sign-on: POST /login issues
	// tokens and every /rpc and /msg request must carry a valid one.
	Authority *auth.Authority

	// SweepEvery is the period of background state sweeps (pending
	// reply routes). Default 30s.
	SweepEvery time.Duration
}

// Server is a running WS-Dispatcher.
type Server struct {
	cfg Config

	// Registry is the shared service registry.
	Registry *registry.Registry
	// RPC is the RPC-Dispatcher (nil when disabled).
	RPC *rpcdisp.Dispatcher
	// Msg is the MSG-Dispatcher (nil when disabled).
	Msg *msgdisp.Dispatcher
	// MsgBox is the co-located mailbox service (nil when disabled).
	MsgBox *msgbox.Service
	// Courier is the MSG-Dispatcher's hold/retry agent (nil unless
	// StoreDir is set alongside MsgPort).
	Courier *reliable.Courier

	servers []*httpx.Server
	stores  []*store.Store

	// sweepMu orders the sweep timer's self-rescheduling callback (which
	// runs on the clock's goroutine) against Stop.
	sweepMu sync.Mutex
	sweeper *clock.Timer
	stopped bool
}

// New validates the config and assembles (but does not start) a Server.
func New(cfg Config) (*Server, error) {
	if cfg.Clock == nil {
		cfg.Clock = clock.Wall
	}
	if cfg.HostName == "" {
		return nil, errors.New("core: HostName required")
	}
	if cfg.Listen == nil || cfg.Dialer == nil {
		return nil, errors.New("core: Listen and Dialer required")
	}
	if cfg.RPCPort == 0 && cfg.MsgPort == 0 && cfg.MsgBoxPort == 0 {
		return nil, errors.New("core: all services disabled")
	}
	if cfg.SweepEvery <= 0 {
		cfg.SweepEvery = 30 * time.Second
	}

	s := &Server{cfg: cfg}
	s.Registry = registry.New(cfg.Policy, cfg.Clock)
	if cfg.RegistryFile != "" {
		if err := s.Registry.LoadFile(cfg.RegistryFile); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}

	if cfg.RPCPort != 0 {
		rc := cfg.RPC
		rc.Clock = cfg.Clock
		// The forwarding proxy must hold persistent connections to
		// the services it fronts: with a small idle pool it would
		// churn dials against the service's connection table under
		// load and collapse where direct clients still progress —
		// the opposite of the paper's "little negative impact".
		client := httpx.NewClient(cfg.Dialer, httpx.ClientConfig{
			Clock:          cfg.Clock,
			MaxIdlePerHost: 512,
		})
		s.RPC = rpcdisp.New(s.Registry, client, rc)
	}
	if cfg.MsgPort != 0 {
		mc := cfg.Msg
		mc.Clock = cfg.Clock
		mc.ReturnAddress = fmt.Sprintf("http://%s:%d/msg", cfg.HostName, cfg.MsgPort)
		if cfg.StoreDir != "" {
			st, err := s.openStore("courier")
			if err != nil {
				return nil, err
			}
			cc := cfg.Courier
			cc.Clock = cfg.Clock
			courierClient := httpx.NewClient(cfg.Dialer, httpx.ClientConfig{Clock: cfg.Clock})
			s.Courier = reliable.New(st, courierClient, cc)
			mc.Courier = s.Courier
		}
		client := httpx.NewClient(cfg.Dialer, httpx.ClientConfig{Clock: cfg.Clock})
		s.Msg = msgdisp.New(s.Registry, client, mc)
	}
	if cfg.MsgBoxPort != 0 {
		bc := cfg.MsgBox
		bc.Clock = cfg.Clock
		bc.BaseURL = fmt.Sprintf("http://%s:%d", cfg.HostName, cfg.MsgBoxPort)
		if cfg.StoreDir != "" {
			st, err := s.openStore("msgbox")
			if err != nil {
				return nil, err
			}
			bc.Store = st
		}
		s.MsgBox = msgbox.New(bc)
	}
	return s, nil
}

// openStore opens one durable store under StoreDir, tracking it for
// Stop. A failed open closes the stores opened before it.
func (s *Server) openStore(name string) (*store.Store, error) {
	if err := os.MkdirAll(s.cfg.StoreDir, 0o755); err != nil {
		return nil, fmt.Errorf("core: store dir: %w", err)
	}
	opts := s.cfg.Store
	opts.WAL.Clock = s.cfg.Clock
	st, err := store.Open(s.cfg.Clock, filepath.Join(s.cfg.StoreDir, name), opts)
	if err != nil {
		for _, prev := range s.stores {
			prev.Close()
		}
		return nil, fmt.Errorf("core: open %s store: %w", name, err)
	}
	s.stores = append(s.stores, st)
	return st, nil
}

// RPCURL returns the RPC-Dispatcher base URL ("" when disabled).
func (s *Server) RPCURL() string {
	if s.cfg.RPCPort == 0 {
		return ""
	}
	return fmt.Sprintf("http://%s:%d", s.cfg.HostName, s.cfg.RPCPort)
}

// MsgURL returns the MSG-Dispatcher message endpoint ("" when disabled).
func (s *Server) MsgURL() string {
	if s.cfg.MsgPort == 0 {
		return ""
	}
	return fmt.Sprintf("http://%s:%d/msg", s.cfg.HostName, s.cfg.MsgPort)
}

// MsgBoxURL returns the mailbox management endpoint ("" when disabled).
func (s *Server) MsgBoxURL() string {
	if s.cfg.MsgBoxPort == 0 {
		return ""
	}
	return fmt.Sprintf("http://%s:%d/mbox", s.cfg.HostName, s.cfg.MsgBoxPort)
}

// Start opens all listeners and launches background sweeps.
func (s *Server) Start() error {
	if s.RPC != nil {
		if err := s.serve(s.cfg.RPCPort, s.rpcMux()); err != nil {
			return err
		}
	}
	if s.Msg != nil {
		if s.Courier != nil {
			// Requeues everything the previous incarnation left
			// pending in the WAL before new traffic arrives.
			s.Courier.Start()
		}
		if err := s.Msg.Start(); err != nil {
			return err
		}
		if err := s.serve(s.cfg.MsgPort, s.msgMux()); err != nil {
			return err
		}
	}
	if s.MsgBox != nil {
		if err := s.MsgBox.Start(); err != nil {
			return err
		}
		if err := s.serve(s.cfg.MsgBoxPort, s.MsgBox); err != nil {
			return err
		}
	}
	s.scheduleSweep()
	return nil
}

// Stop closes all listeners and pools.
func (s *Server) Stop() {
	s.sweepMu.Lock()
	s.stopped = true
	sweeper := s.sweeper
	s.sweepMu.Unlock()
	if sweeper != nil {
		sweeper.Stop()
	}
	for _, srv := range s.servers {
		srv.Close()
	}
	if s.Msg != nil {
		s.Msg.Stop()
	}
	if s.MsgBox != nil {
		s.MsgBox.Stop()
	}
	if s.Courier != nil {
		s.Courier.Stop()
	}
	for _, st := range s.stores {
		st.Close()
	}
}

func (s *Server) serve(port int, h httpx.Handler) error {
	ln, err := s.cfg.Listen(port)
	if err != nil {
		return fmt.Errorf("core: listen %d: %w", port, err)
	}
	srv := httpx.NewServer(h, httpx.ServerConfig{Clock: s.cfg.Clock})
	srv.Start(ln)
	s.servers = append(s.servers, srv)
	return nil
}

func (s *Server) scheduleSweep() {
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	if s.stopped {
		return
	}
	// One persistent timer re-armed per cycle, not an AfterFunc per
	// cycle: the callback and its wheel entry are allocated once for the
	// server's lifetime.
	if s.sweeper != nil {
		s.sweeper.Reset(s.cfg.SweepEvery)
		return
	}
	s.sweeper = s.cfg.Clock.AfterFunc(s.cfg.SweepEvery, func() {
		if s.Msg != nil {
			s.Msg.SweepPending()
		}
		s.scheduleSweep()
	})
}

// rpcMux routes the RPC port: /rpc/* to the dispatcher (behind SSO when
// enabled), /registry and /wsdl/* to the directory, /login to the token
// service.
func (s *Server) rpcMux() httpx.Handler {
	return httpx.HandlerFunc(func(ex *httpx.Exchange) {
		switch {
		case strings.HasPrefix(ex.Req.Path, "/rpc/"):
			if s.denied(ex) {
				return
			}
			s.RPC.Serve(ex)
		case ex.Req.Path == "/registry":
			ex.Header().Set("Content-Type", "text/xml; charset=utf-8")
			ex.ReplyBytes(httpx.StatusOK, rpcdisp.DirectoryPage(s.Registry))
		case strings.HasPrefix(ex.Req.Path, "/wsdl/"):
			s.serveWSDL(ex, strings.TrimPrefix(ex.Req.Path, "/wsdl/"))
		case ex.Req.Path == "/login" && s.cfg.Authority != nil:
			s.serveLogin(ex)
		default:
			ex.ReplyBytes(httpx.StatusNotFound, []byte("unknown path "+ex.Req.Path))
		}
	})
}

// msgMux routes the message port. SSO applies to /msg when enabled.
func (s *Server) msgMux() httpx.Handler {
	return httpx.HandlerFunc(func(ex *httpx.Exchange) {
		if ex.Req.Path != "/msg" {
			ex.ReplyBytes(httpx.StatusNotFound, []byte("unknown path "+ex.Req.Path))
			return
		}
		if s.denied(ex) {
			return
		}
		s.Msg.Serve(ex)
	})
}

// denied enforces SSO when an Authority is configured, answering the
// exchange with 401 and reporting true when the request must stop.
func (s *Server) denied(ex *httpx.Exchange) bool {
	if s.cfg.Authority == nil {
		return false
	}
	if _, err := s.cfg.Authority.Verify(ex.Req.Header.Get(auth.HeaderName)); err != nil {
		soap.ReplyFault(ex, httpx.StatusUnauthorized, soap.FaultClient,
			"authentication required: "+err.Error())
		return true
	}
	return false
}

// serveLogin implements the SSO token service as SOAP-RPC:
// login(principal, secret) -> token.
func (s *Server) serveLogin(ex *httpx.Exchange) {
	env, err := soap.Parse(ex.Req.Body)
	if err != nil {
		ex.ReplyBytes(httpx.StatusBadRequest, []byte(err.Error()))
		return
	}
	call, err := soap.ParseRPC(env)
	if err != nil {
		ex.ReplyBytes(httpx.StatusBadRequest, []byte(err.Error()))
		return
	}
	principal, _ := call.Param("principal")
	secret, _ := call.Param("secret")
	token, err := s.cfg.Authority.Login(principal, secret)
	if err != nil {
		ex.Header().Set("Content-Type", env.Version.ContentType())
		ex.ReplyBytes(httpx.StatusUnauthorized,
			soap.FaultBytes(env.Version, soap.FaultClient, err.Error()))
		return
	}
	out := soap.RPCResponse(env.Version, "urn:wsd:auth", "login",
		soap.Param{Name: "token", Value: token})
	if err := ex.Reply(httpx.StatusOK, out.AppendTo); err != nil {
		ex.ReplyBytes(httpx.StatusInternalServerError, []byte(err.Error()))
		return
	}
	ex.Header().Set("Content-Type", env.Version.ContentType())
}

// serveWSDL renders registered WSDL metadata for one logical service.
func (s *Server) serveWSDL(ex *httpx.Exchange, name string) {
	entry, ok := s.Registry.Lookup(name)
	if !ok || entry.Doc() == nil {
		ex.ReplyBytes(httpx.StatusNotFound, []byte("no WSDL for "+name))
		return
	}
	endpoint := ""
	if s.cfg.RPCPort != 0 {
		endpoint = s.RPCURL() + "/rpc/" + name
	}
	body, err := entry.DocBytes(endpoint)
	if err != nil {
		ex.ReplyBytes(httpx.StatusInternalServerError, []byte(err.Error()))
		return
	}
	ex.Header().Set("Content-Type", "text/xml; charset=utf-8")
	ex.ReplyBytes(httpx.StatusOK, body)
}
