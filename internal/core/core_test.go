package core

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/dispatch/msgdisp"
	"repro/internal/echoservice"
	"repro/internal/httpx"
	"repro/internal/netsim"
	"repro/internal/soap"
	"repro/internal/wsdl"
	"repro/internal/xmlsoap"
)

// rig deploys a full WS-Dispatcher (RPC + MSG + MsgBox) with an echo
// service behind a firewall.
type rig struct {
	clk    *clock.Virtual
	server *Server
	http   *httpx.Client
	rpcCli *client.RPC
}

func newRig(t *testing.T, mutate func(*Config)) *rig {
	t.Helper()
	clk := clock.NewVirtual(time.Unix(0, 0))
	t.Cleanup(clk.Stop)
	nw := netsim.New(clk, 99)
	wsd := nw.AddHost("wsd", netsim.ProfileLAN())
	ws := nw.AddHost("ws", netsim.ProfileLAN(), netsim.WithFirewall(netsim.OutboundOnlyExcept("wsd")))
	cli := nw.AddHost("cli", netsim.ProfileLAN())

	// Echo services behind the firewall.
	rpcEcho := echoservice.NewRPC(clk, 0)
	ln80, _ := ws.Listen(80)
	s80 := httpx.NewServer(rpcEcho, httpx.ServerConfig{Clock: clk})
	s80.Start(ln80)
	t.Cleanup(func() { s80.Close() })

	wsClient := httpx.NewClient(ws, httpx.ClientConfig{Clock: clk})
	asyncEcho := echoservice.NewAsync(clk, wsClient, 0)
	asyncEcho.OwnAddress = "http://ws:81/msg"
	ln81, _ := ws.Listen(81)
	s81 := httpx.NewServer(asyncEcho, httpx.ServerConfig{Clock: clk})
	s81.Start(ln81)
	t.Cleanup(func() { s81.Close() })

	cfg := Config{
		Clock:      clk,
		HostName:   "wsd",
		Listen:     func(port int) (net.Listener, error) { return wsd.Listen(port) },
		Dialer:     wsd,
		RPCPort:    9000,
		MsgPort:    9100,
		MsgBoxPort: 9200,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	server, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	server.Registry.Register("echo", "http://ws:80/")
	server.Registry.Register("echo-msg", "http://ws:81/msg")
	server.Registry.SetDoc("echo", &wsdl.Service{
		Name: "echo", TargetNS: echoservice.EchoNS,
		Documentation: "echo test service",
		Operations:    []wsdl.Operation{{Name: echoservice.EchoOp}},
	})
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(server.Stop)

	httpCli := httpx.NewClient(cli, httpx.ClientConfig{Clock: clk, RequestTimeout: 10 * time.Second})
	t.Cleanup(httpCli.Close)
	return &rig{clk: clk, server: server, http: httpCli, rpcCli: client.NewRPC(httpCli)}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := New(Config{HostName: "h"}); err == nil {
		t.Fatal("config without Listen/Dialer accepted")
	}
}

func TestRPCThroughComposedServer(t *testing.T) {
	r := newRig(t, nil)
	results, err := r.rpcCli.Call(r.server.RPCURL()+"/rpc/echo",
		echoservice.EchoNS, echoservice.EchoOp,
		soap.Param{Name: "message", Value: "composed"})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Value != "composed" {
		t.Fatalf("results = %+v", results)
	}
}

func TestRegistryDirectoryServed(t *testing.T) {
	r := newRig(t, nil)
	resp, err := r.http.Do("wsd:9000", httpx.NewRequest("GET", "/registry", nil))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != httpx.StatusOK || !strings.Contains(string(resp.Body), `name="echo"`) {
		t.Fatalf("directory = %d %s", resp.Status, resp.Body)
	}
}

func TestWSDLServed(t *testing.T) {
	r := newRig(t, nil)
	resp, err := r.http.Do("wsd:9000", httpx.NewRequest("GET", "/wsdl/echo", nil))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != httpx.StatusOK {
		t.Fatalf("status = %d", resp.Status)
	}
	doc, err := wsdl.Parse(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	// The endpoint is filled with the *dispatcher* URL: clients are
	// pointed at the logical address, not the firewalled physical one.
	if doc.Endpoint != "http://wsd:9000/rpc/echo" {
		t.Fatalf("endpoint = %q", doc.Endpoint)
	}
	if resp2, _ := r.http.Do("wsd:9000", httpx.NewRequest("GET", "/wsdl/ghost", nil)); resp2.Status != httpx.StatusNotFound {
		t.Fatalf("ghost wsdl status = %d", resp2.Status)
	}
}

func TestFullConversationThroughComposedServer(t *testing.T) {
	r := newRig(t, nil)
	mboxCli := client.NewMailboxClient(r.rpcCli, r.server.MsgBoxURL(), r.clk)
	box, err := mboxCli.Create()
	if err != nil {
		t.Fatal(err)
	}
	conv := &client.Conversation{
		Messenger:     client.NewMessenger(r.http),
		Mailbox:       mboxCli,
		Box:           box,
		DispatcherURL: r.server.MsgURL(),
		PollEvery:     200 * time.Millisecond,
	}
	reply, err := conv.Call(msgdisp.LogicalScheme+"echo-msg", "urn:echo",
		xmlsoap.NewText(echoservice.EchoNS, "echo", "all-in-one"), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if reply.BodyElement().Text != "all-in-one" {
		t.Fatalf("reply = %s", reply.BodyElement())
	}
}

func TestSSOBlocksUntokenedRequests(t *testing.T) {
	clkAuthority := clock.NewVirtual(time.Unix(0, 0))
	defer clkAuthority.Stop()
	authority := auth.New([]byte("k"), time.Hour, clkAuthority)
	authority.AddPrincipal("alice", "pw")

	r := newRig(t, func(cfg *Config) { cfg.Authority = authority })

	// No token: 401.
	body, _ := soap.RPCRequest(soap.V11, echoservice.EchoNS, echoservice.EchoOp,
		soap.Param{Name: "message", Value: "x"}).Marshal()
	req := httpx.NewRequest("POST", "/rpc/echo", body)
	resp, err := r.http.Do("wsd:9000", req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != httpx.StatusUnauthorized {
		t.Fatalf("untokened status = %d", resp.Status)
	}

	// Login via the dispatcher's own /login endpoint.
	results, err := r.rpcCli.Call(r.server.RPCURL()+"/login", "urn:wsd:auth", "login",
		soap.Param{Name: "principal", Value: "alice"},
		soap.Param{Name: "secret", Value: "pw"})
	if err != nil {
		t.Fatal(err)
	}
	token := results[0].Value
	if token == "" {
		t.Fatal("empty token")
	}

	// Tokened request passes.
	req2 := httpx.NewRequest("POST", "/rpc/echo", body)
	req2.Header.Set(auth.HeaderName, token)
	resp2, err := r.http.Do("wsd:9000", req2)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Status != httpx.StatusOK {
		t.Fatalf("tokened status = %d body=%s", resp2.Status, resp2.Body)
	}

	// Bad login is refused.
	if _, err := r.rpcCli.Call(r.server.RPCURL()+"/login", "urn:wsd:auth", "login",
		soap.Param{Name: "principal", Value: "alice"},
		soap.Param{Name: "secret", Value: "wrong"}); err == nil {
		t.Fatal("bad login succeeded")
	}
}

func TestUnknownPaths404(t *testing.T) {
	r := newRig(t, nil)
	for _, tc := range []struct{ addr, path string }{
		{"wsd:9000", "/nope"},
		{"wsd:9100", "/nope"},
	} {
		resp, err := r.http.Do(tc.addr, httpx.NewRequest("GET", tc.path, nil))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != httpx.StatusNotFound {
			t.Fatalf("%s%s status = %d", tc.addr, tc.path, resp.Status)
		}
	}
}

func TestSweepRunsPeriodically(t *testing.T) {
	r := newRig(t, func(cfg *Config) { cfg.SweepEvery = time.Second })
	// Nothing to assert beyond "it doesn't crash while time passes".
	r.clk.Sleep(5 * time.Second)
	if r.server.Msg.PendingLen() != 0 {
		t.Fatalf("pending = %d", r.server.Msg.PendingLen())
	}
}
