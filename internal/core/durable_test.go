package core

import (
	"net"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/dispatch/msgdisp"
	"repro/internal/echoservice"
	"repro/internal/httpx"
	"repro/internal/msgbox"
	"repro/internal/netsim"
	"repro/internal/reliable"
	"repro/internal/soap"
	"repro/internal/store"
	"repro/internal/wal"
	"repro/internal/wsa"
	"repro/internal/xmlsoap"
)

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached")
}

// TestDurableServerSurvivesRestart exercises Config.StoreDir through the
// composed server: a message accepted for a dead destination and a
// mailbox created over RPC both survive a full Stop/New/Start cycle on
// the same directory — the courier redelivers from its WAL once the
// destination returns, and the mailbox is back with its state.
func TestDurableServerSurvivesRestart(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	defer clk.Stop()
	// SyncAlways fsyncs on courier/mailbox goroutines; real disk waits
	// must not read as quiescence (see clock.Virtual).
	clk.SetGrace(2 * time.Millisecond)
	nw := netsim.New(clk, 17)
	wsd := nw.AddHost("wsd", netsim.ProfileLAN())
	ws := nw.AddHost("ws", netsim.ProfileLAN())
	cli := nw.AddHost("cli", netsim.ProfileLAN())
	dir := filepath.Join(t.TempDir(), "state")

	boot := func() *Server {
		t.Helper()
		server, err := New(Config{
			Clock:      clk,
			HostName:   "wsd",
			Listen:     func(port int) (net.Listener, error) { return wsd.Listen(port) },
			Dialer:     wsd,
			MsgPort:    9100,
			MsgBoxPort: 9200,
			StoreDir:   dir,
			Store:      store.Options{WAL: wal.Config{Sync: wal.SyncAlways}},
			Courier: reliable.Config{
				InitialBackoff: 2 * time.Second,
				MaxBackoff:     5 * time.Second,
				AttemptTimeout: 2 * time.Second,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		server.Registry.Register("echo-msg", "http://ws:81/msg")
		if err := server.Start(); err != nil {
			t.Fatal(err)
		}
		return server
	}

	client := httpx.NewClient(cli, httpx.ClientConfig{Clock: clk, RequestTimeout: 10 * time.Second})
	defer client.Close()
	post := func(addr, path string, body []byte, want int) {
		t.Helper()
		req := httpx.NewRequest("POST", path, body)
		req.Header.Set("Content-Type", soap.V11.ContentType())
		resp, err := client.Do(addr, req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != want {
			t.Fatalf("POST %s status = %d, want %d", path, resp.Status, want)
		}
		resp.Release()
	}

	// Generation 1: destination ws:81 is down. The forward fails over to
	// the courier's WAL; the mailbox create persists too.
	s1 := boot()
	env := soap.New(soap.V11).SetBody(xmlsoap.NewText(echoservice.EchoNS, "echo", "held"))
	(&wsa.Headers{
		To:        msgdisp.LogicalScheme + "echo-msg",
		Action:    echoservice.EchoNS + ":echo",
		MessageID: wsa.NewMessageID(),
	}).Apply(env)
	raw, err := env.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	post("wsd:9100", "/msg", raw, httpx.StatusAccepted)
	create, _ := soap.RPCRequest(soap.V11, msgbox.ServiceNS, msgbox.OpCreate).Marshal()
	post("wsd:9200", "/mbox", create, httpx.StatusOK)
	waitFor(t, func() bool { return s1.Courier.Pending() == 1 })
	s1.Stop()

	// The destination comes back; generation 2 reopens the same state.
	wsClient := httpx.NewClient(ws, httpx.ClientConfig{Clock: clk})
	defer wsClient.Close()
	echo := echoservice.NewAsync(clk, wsClient, 0)
	ln, err := ws.Listen(81)
	if err != nil {
		t.Fatal(err)
	}
	srvWS := httpx.NewServer(echo, httpx.ServerConfig{Clock: clk})
	srvWS.Start(ln)
	defer srvWS.Close()

	s2 := boot()
	defer s2.Stop()
	if got := s2.MsgBox.Boxes(); got != 1 {
		t.Fatalf("mailboxes after restart = %d, want 1", got)
	}
	waitFor(t, func() bool { return s2.Courier.Delivered.Value() == 1 })
	if got := echo.Accepted.Value(); got != 1 {
		t.Fatalf("service accepted %d deliveries, want exactly 1", got)
	}
	if got := s2.Courier.Pending(); got != 0 {
		t.Fatalf("courier still holds %d messages", got)
	}
}
