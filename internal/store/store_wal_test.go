package store

import (
	"encoding/base64"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/wal"
)

// legacyLog builds a JSON-lines log in the pre-WAL format.
func legacyLog(lines ...string) []byte {
	return []byte(strings.Join(lines, "\n") + "\n")
}

func legacyPut(id, dest, payload string) string {
	return fmt.Sprintf(`{"op":"put","msg":{"id":%q,"dest":%q,"payload":%q,"enqueued":"2026-01-02T15:04:05Z","expires":"0001-01-01T00:00:00Z","attempts":0}}`,
		id, dest, base64.StdEncoding.EncodeToString([]byte(payload)))
}

func TestLegacyMigration(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.jsonl")
	log := legacyLog(
		legacyPut("m1", "d1", "first"),
		legacyPut("m2", "d2", "second"),
		`{"op":"att","id":"m2"}`,
		`{"op":"del","id":"m1"}`,
	)
	if err := os.WriteFile(path, log, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenFile(clock.Wall, path)
	if err != nil {
		t.Fatalf("OpenFile (migration): %v", err)
	}
	if s.Len() != 1 {
		t.Fatalf("migrated Len = %d, want 1", s.Len())
	}
	m2, err := s.Get("m2")
	if err != nil {
		t.Fatal(err)
	}
	if string(m2.Payload) != "second" || m2.Attempts != 1 {
		t.Fatalf("m2 = %+v", m2)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("legacy JSON log still present after migration")
	}
	if s.WAL() == nil {
		t.Fatal("migrated store has no WAL")
	}
	s.Close()
	// The state now lives in the WAL alone.
	s2, err := OpenFile(clock.Wall, path)
	if err != nil {
		t.Fatalf("reopen after migration: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 1 {
		t.Fatalf("post-migration Len = %d, want 1", s2.Len())
	}
	if m, err := s2.Get("m2"); err != nil || string(m.Payload) != "second" || m.Attempts != 1 {
		t.Fatalf("m2 after reopen = %+v (%v)", m, err)
	}
}

// TestLegacyTornTailEveryByteOffset pins the satellite fix: a legacy
// log chopped at ANY byte offset of its final record must open — the
// torn line is dropped, every whole line before it is applied — instead
// of hard-failing the way replay used to.
func TestLegacyTornTailEveryByteOffset(t *testing.T) {
	whole := []string{
		legacyPut("m1", "d", "first"),
		legacyPut("m2", "d", "second"),
		`{"op":"del","id":"m1"}`,
	}
	lastLine := legacyPut("m3", "d", "the-final-record-torn-by-the-crash")
	prefix := strings.Join(whole, "\n") + "\n"
	for cut := 0; cut <= len(lastLine); cut++ {
		path := filepath.Join(t.TempDir(), "store.jsonl")
		if err := os.WriteFile(path, []byte(prefix+lastLine[:cut]), 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := OpenFile(clock.Wall, path)
		if err != nil {
			t.Fatalf("cut=%d: OpenFile: %v", cut, err)
		}
		wantLen := 1 // m2 (m1 deleted)
		if cut == len(lastLine) {
			wantLen = 2 // the "torn" line is actually whole
		}
		if s.Len() != wantLen {
			t.Fatalf("cut=%d: Len = %d, want %d", cut, s.Len(), wantLen)
		}
		if _, err := s.Get("m2"); err != nil {
			t.Fatalf("cut=%d: m2 lost: %v", cut, err)
		}
		if _, err := s.Get("m1"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("cut=%d: deleted m1 resurrected", cut)
		}
		s.Close()
	}
}

// TestLegacyCorruptMiddleLineFatal: damage that is NOT the final line
// is real corruption — silently skipping it could resurrect a deleted
// message, so OpenFile must refuse.
func TestLegacyCorruptMiddleLineFatal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	log := legacyLog(
		legacyPut("m1", "d", "x"),
		`{"op":"del","id":`, // torn mid-log, followed by more content
		legacyPut("m2", "d", "y"),
	)
	if err := os.WriteFile(path, log, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(clock.Wall, path); err == nil {
		t.Fatal("OpenFile accepted a corrupt middle line")
	}
}

// TestMigrationRedoneAfterCrash: a crash mid-migration leaves both the
// JSON log and a partially-written WAL; the next OpenFile must discard
// the partial WAL state and migrate the JSON from scratch.
func TestMigrationRedoneAfterCrash(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.jsonl")
	// The interrupted first migration got m1 and a bogus marker into the
	// WAL before dying.
	s0, err := Open(clock.Wall, path+".wal", Options{})
	if err != nil {
		t.Fatal(err)
	}
	s0.Put(&Message{ID: "m1", Destination: "d", Payload: []byte("stale")})
	s0.Put(&Message{ID: "leftover", Destination: "d", Payload: []byte("junk")})
	s0.Close()
	// The JSON log — still present, still the source of truth.
	if err := os.WriteFile(path, legacyLog(
		legacyPut("m1", "d", "fresh"),
		legacyPut("m2", "d", "second"),
	), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenFile(clock.Wall, path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (WAL leftovers discarded)", s.Len())
	}
	if _, err := s.Get("leftover"); !errors.Is(err, ErrNotFound) {
		t.Fatal("partial-migration leftover survived the redo")
	}
	if m, _ := s.Get("m1"); m == nil || string(m.Payload) != "fresh" {
		t.Fatalf("m1 = %+v, want the JSON version", m)
	}
}

// TestWALErrorsSurface pins the satellite fix: with the log unable to
// accept records, Put/Delete/MarkAttempt report the failure and leave
// memory untouched — the old store swallowed log errors and carried on.
func TestWALErrorsSurface(t *testing.T) {
	s, err := Open(clock.Wall, filepath.Join(t.TempDir(), "wal"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(&Message{ID: "ok", Destination: "d", Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	s.WAL().Close() // the log dies under the store
	if err := s.Put(&Message{ID: "m", Destination: "d"}); !errors.Is(err, wal.ErrClosed) {
		t.Fatalf("Put on dead log: %v, want wal.ErrClosed", err)
	}
	if _, err := s.Get("m"); !errors.Is(err, ErrNotFound) {
		t.Fatal("failed Put still stored the message")
	}
	if err := s.MarkAttempt("ok"); !errors.Is(err, wal.ErrClosed) {
		t.Fatalf("MarkAttempt on dead log: %v", err)
	}
	if m, _ := s.Get("ok"); m.Attempts != 0 {
		t.Fatal("failed MarkAttempt still incremented")
	}
	if err := s.Delete("ok"); !errors.Is(err, wal.ErrClosed) {
		t.Fatalf("Delete on dead log: %v", err)
	}
	if _, err := s.Get("ok"); err != nil {
		t.Fatal("failed Delete still removed the message")
	}
	// Oversized records surface too, without poisoning the log.
	s2, err := Open(clock.Wall, filepath.Join(t.TempDir(), "wal2"), Options{WAL: wal.Config{MaxRecord: 64}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	big := &Message{ID: "big", Destination: "d", Payload: make([]byte, 128)}
	if err := s2.Put(big); !errors.Is(err, wal.ErrTooLarge) {
		t.Fatalf("oversized Put: %v, want wal.ErrTooLarge", err)
	}
	if err := s2.Put(&Message{ID: "small", Destination: "d", Payload: []byte("x")}); err != nil {
		t.Fatalf("Put after oversized: %v", err)
	}
}

// TestTimestampsSurviveReplay: Enqueued and Expires round-trip the
// binary record, including the "never expires" zero value and the
// Virtual clock's Unix(0,0) origin.
func TestTimestampsSurviveReplay(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	defer clk.Stop()
	dir := filepath.Join(t.TempDir(), "wal")
	s, err := Open(clk, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	never := &Message{ID: "never", Destination: "d", Payload: []byte("x")}
	s.Put(never) // Enqueued stamped Unix(0,0)
	dated := &Message{ID: "dated", Destination: "d", Payload: []byte("y"),
		Expires: clk.Now().Add(time.Hour)}
	s.Put(dated)
	s.MarkAttempt("dated")
	s.Close()

	s2, err := Open(clk, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	n, err := s2.Get("never")
	if err != nil {
		t.Fatal(err)
	}
	if !n.Expires.IsZero() {
		t.Fatalf("never-expires came back as %v", n.Expires)
	}
	if !n.Enqueued.Equal(time.Unix(0, 0)) {
		t.Fatalf("Enqueued = %v, want Unix(0,0)", n.Enqueued)
	}
	d, err := s2.Get("dated")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Expires.Equal(time.Unix(0, 0).Add(time.Hour)) {
		t.Fatalf("Expires = %v", d.Expires)
	}
	if d.Attempts != 1 {
		t.Fatalf("Attempts = %d", d.Attempts)
	}
	// Expiry still enforced after replay.
	clk.Advance(2 * time.Hour)
	if n := s2.Sweep(); n != 1 {
		t.Fatalf("Sweep after replay = %d, want 1", n)
	}
}

// TestAutoCompaction: churn far past CompactAt must trigger snapshot
// compaction — the log stays bounded instead of growing with history —
// and the compacted log replays to the same state.
func TestAutoCompaction(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	s, err := Open(clock.Wall, dir, Options{
		CompactAt: 4 << 10,
		WAL:       wal.Config{Sync: wal.SyncNever, SegmentSize: 2 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 128)
	for i := 0; i < 400; i++ {
		id := fmt.Sprintf("m%04d", i)
		if err := s.Put(&Message{ID: id, Destination: "d", Payload: payload}); err != nil {
			t.Fatal(err)
		}
		if i >= 4 {
			if err := s.Delete(fmt.Sprintf("m%04d", i-4)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if s.WAL().Compactions.Value() == 0 {
		t.Fatal("no compaction despite heavy churn")
	}
	// ~5 live messages * ~170 encoded bytes: the log must be near the
	// live size, not the 400-op history. Allow generous slack for the
	// post-compaction appends since the last snapshot.
	if size := s.WAL().Size(); size > 16<<10 {
		t.Fatalf("log size %d after churn; compaction is not bounding it", size)
	}
	liveLen := s.Len()
	pending := s.PendingFor("d", 0)
	s.Close()
	s2, err := Open(clock.Wall, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != liveLen {
		t.Fatalf("replayed Len = %d, want %d", s2.Len(), liveLen)
	}
	got := s2.PendingFor("d", 0)
	if len(got) != len(pending) {
		t.Fatalf("pending = %d, want %d", len(got), len(pending))
	}
	for i := range pending {
		if got[i].ID != pending[i].ID {
			t.Fatalf("pending order diverged at %d: %s vs %s", i, got[i].ID, pending[i].ID)
		}
	}
}

// TestWALStoreCrashConsistency is the store-level slice of the
// acceptance property: chop the WAL segment at every byte offset after
// a put/delete history — every recovered state must be CONSISTENT
// (deleted messages stay deleted once the delete record survives;
// stored messages decode whole) even though how much history survives
// depends on the cut.
func TestWALStoreCrashConsistency(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	s, err := Open(clock.Wall, dir, Options{WAL: wal.Config{Sync: wal.SyncNever}})
	if err != nil {
		t.Fatal(err)
	}
	s.Put(&Message{ID: "acked", Destination: "d", Payload: []byte("delivered-already")})
	s.Put(&Message{ID: "pend-1", Destination: "d", Payload: []byte("waiting one")})
	s.Delete("acked") // delivered: must never come back once this record is on disk
	s.Put(&Message{ID: "pend-2", Destination: "d", Payload: []byte("waiting two")})
	s.MarkAttempt("pend-1")
	s.Close()
	segs, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	full, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// The delete record's on-disk position: find where "acked" stops
	// resurrecting. Below it, "acked" may be live (its put survived) —
	// that is consistent, the delete never happened. At or above it,
	// "acked" must be gone.
	for cut := 0; cut <= len(full); cut++ {
		cdir := filepath.Join(t.TempDir(), "cut")
		if err := os.Mkdir(cdir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(cdir, filepath.Base(segs[0])), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		cs, err := Open(clock.Wall, cdir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		// Consistency invariants at every cut:
		if m, err := cs.Get("pend-2"); err == nil {
			// pend-2's put is after the delete: if pend-2 exists, the
			// delete record is on disk too, so acked must be gone.
			if string(m.Payload) != "waiting two" {
				t.Fatalf("cut=%d: pend-2 payload %q", cut, m.Payload)
			}
			if _, err := cs.Get("acked"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("cut=%d: acked message resurrected after its delete", cut)
			}
		}
		if m, err := cs.Get("pend-1"); err == nil {
			if string(m.Payload) != "waiting one" {
				t.Fatalf("cut=%d: pend-1 payload %q", cut, m.Payload)
			}
		} else if cut == len(full) {
			t.Fatalf("full log lost pend-1: %v", err)
		}
		cs.Close()
	}
}

// BenchmarkStorePutDelete measures the durable mutation cycle: one Put
// and one Delete per op, each a WAL append, under the production
// group-commit policy and with fsync off (the encode+frame+write cost).
func BenchmarkStorePutDelete(b *testing.B) {
	payload := make([]byte, 256)
	for _, mode := range []struct {
		name string
		sync wal.SyncPolicy
	}{{"nosync", wal.SyncNever}, {"group", wal.SyncInterval}} {
		b.Run(mode.name, func(b *testing.B) {
			s, err := Open(clock.Wall, filepath.Join(b.TempDir(), "wal"),
				Options{WAL: wal.Config{Sync: mode.sync, SegmentSize: 1 << 30}, CompactAt: 1 << 40})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			m := &Message{Destination: "http://dest:1/svc", Payload: payload}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.ID = fmt.Sprintf("bench-%09d", i)
				m.Enqueued = time.Time{}
				if err := s.Put(m); err != nil {
					b.Fatal(err)
				}
				if err := s.Delete(m.ID); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
