package store

import (
	"errors"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/clock"
)

func msg(id, dest string, payload string) *Message {
	return &Message{ID: id, Destination: dest, Payload: []byte(payload)}
}

func TestPutGetDelete(t *testing.T) {
	s := New(clock.Wall)
	if err := s.Put(msg("m1", "http://a:1/x", "hello")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("m1")
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "hello" || got.Destination != "http://a:1/x" {
		t.Fatalf("got = %+v", got)
	}
	if got.Enqueued.IsZero() {
		t.Fatal("Enqueued not stamped")
	}
	if err := s.Delete("m1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("m1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Delete = %v", err)
	}
	if err := s.Delete("m1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double Delete = %v", err)
	}
}

func TestPutDuplicate(t *testing.T) {
	s := New(clock.Wall)
	s.Put(msg("m1", "d", "a"))
	if err := s.Put(msg("m1", "d", "b")); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate Put = %v", err)
	}
}

func TestPutEmptyID(t *testing.T) {
	s := New(clock.Wall)
	if err := s.Put(msg("", "d", "x")); err == nil {
		t.Fatal("empty id accepted")
	}
}

func TestPendingForOrdering(t *testing.T) {
	s := New(clock.Wall)
	for _, id := range []string{"a", "b", "c"} {
		s.Put(msg(id, "dest", id))
	}
	s.Put(msg("other", "elsewhere", "x"))
	got := s.PendingFor("dest", 0)
	if len(got) != 3 {
		t.Fatalf("pending = %d", len(got))
	}
	for i, want := range []string{"a", "b", "c"} {
		if got[i].ID != want {
			t.Fatalf("order = %v", got)
		}
	}
	if limited := s.PendingFor("dest", 2); len(limited) != 2 {
		t.Fatalf("limited = %d", len(limited))
	}
}

func TestExpirationSweep(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	defer clk.Stop()
	s := New(clk)
	m := msg("m1", "d", "x")
	m.Expires = clk.Now().Add(time.Minute)
	s.Put(m)
	keep := msg("m2", "d", "y") // no expiry
	s.Put(keep)

	if n := s.Sweep(); n != 0 {
		t.Fatalf("premature sweep removed %d", n)
	}
	clk.Advance(2 * time.Minute)
	if n := s.Sweep(); n != 1 {
		t.Fatalf("sweep removed %d, want 1", n)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.ExpiredTotal() != 1 {
		t.Fatalf("ExpiredTotal = %d", s.ExpiredTotal())
	}
	// Expired messages are also hidden from PendingFor before sweeping.
	m3 := msg("m3", "d", "z")
	m3.Expires = clk.Now().Add(time.Second)
	s.Put(m3)
	clk.Advance(time.Hour)
	for _, p := range s.PendingFor("d", 0) {
		if p.ID == "m3" {
			t.Fatal("expired message visible in PendingFor")
		}
	}
}

func TestMarkAttempt(t *testing.T) {
	s := New(clock.Wall)
	s.Put(msg("m1", "d", "x"))
	s.MarkAttempt("m1")
	s.MarkAttempt("m1")
	got, _ := s.Get("m1")
	if got.Attempts != 2 {
		t.Fatalf("Attempts = %d", got.Attempts)
	}
	if err := s.MarkAttempt("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("MarkAttempt missing = %v", err)
	}
}

func TestDestinations(t *testing.T) {
	s := New(clock.Wall)
	s.Put(msg("1", "a", "x"))
	s.Put(msg("2", "b", "x"))
	s.Put(msg("3", "a", "x"))
	ds := s.Destinations()
	if len(ds) != 2 {
		t.Fatalf("Destinations = %v", ds)
	}
	s.Delete("2")
	if len(s.Destinations()) != 1 {
		t.Fatal("destination with no messages survived")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := New(clock.Wall)
	s.Put(msg("m", "d", "orig"))
	got, _ := s.Get("m")
	got.Payload[0] = 'X'
	again, _ := s.Get("m")
	if string(again.Payload) != "orig" {
		t.Fatal("Get exposed internal payload")
	}
}

func TestFilePersistenceReplay(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(1000, 0))
	defer clk.Stop()
	path := filepath.Join(t.TempDir(), "wal.jsonl")

	s, err := OpenFile(clk, path)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(msg("m1", "d1", "first"))
	s.Put(msg("m2", "d2", "second"))
	s.MarkAttempt("m2")
	s.Delete("m1")
	s.Close()

	s2, err := OpenFile(clk, path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 1 {
		t.Fatalf("replayed Len = %d, want 1", s2.Len())
	}
	if _, err := s2.Get("m1"); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted message survived replay")
	}
	m2, err := s2.Get("m2")
	if err != nil {
		t.Fatal(err)
	}
	if string(m2.Payload) != "second" || m2.Attempts != 1 {
		t.Fatalf("m2 = %+v", m2)
	}
}

func TestOpenFileBadPath(t *testing.T) {
	if _, err := OpenFile(clock.Wall, filepath.Join(t.TempDir(), "no", "such", "dir", "f")); err == nil {
		t.Fatal("OpenFile on missing directory succeeded")
	}
}

// Property: after any sequence of puts (unique ids) and deletes, Len
// matches the reference set and PendingFor preserves insertion order.
func TestQuickStoreConsistency(t *testing.T) {
	f := func(ops []uint8) bool {
		s := New(clock.Wall)
		ref := map[string]bool{}
		var order []string
		next := 0
		for _, op := range ops {
			if op%3 != 0 || len(order) == 0 {
				id := string(rune('a'+next%26)) + string(rune('0'+next/26%10))
				next++
				if ref[id] {
					continue
				}
				if err := s.Put(msg(id, "d", "x")); err != nil {
					return false
				}
				ref[id] = true
				order = append(order, id)
			} else {
				id := order[0]
				order = order[1:]
				delete(ref, id)
				if err := s.Delete(id); err != nil {
					return false
				}
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		pending := s.PendingFor("d", 0)
		if len(pending) != len(order) {
			return false
		}
		for i := range order {
			if pending[i].ID != order[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
