package store

import (
	"os"
	"strings"
	"testing"

	"repro/internal/xmlsoap"
)

// TestMain turns on the pooled-buffer lifecycle checker for this suite:
// the durable store encodes every WAL record through a pooled xmlsoap
// scratch, so release bugs in the encode path panic here. Benchmarks
// measure the production configuration (same idiom as msgdisp/wal).
func TestMain(m *testing.M) {
	bench := false
	for _, arg := range os.Args {
		if strings.HasPrefix(arg, "-test.bench=") && !strings.HasSuffix(arg, "=") {
			bench = true
		}
	}
	if !bench {
		xmlsoap.EnablePoolCheck()
	}
	os.Exit(m.Run())
}
