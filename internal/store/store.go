// Package store is the message store behind reliable ("hold/retry")
// delivery and durable mailboxes. The paper's future-work section proposes
// exactly this: "improve forwarding service by adding hold/retry on
// delivery ... with messages stored in DB with expiration time" (they
// planned MySQL; an embedded append-log with an in-memory index preserves
// the behaviour — durable enqueue, expiry, replay on restart — without an
// external database).
package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/clock"
)

// Message is one stored message awaiting delivery.
type Message struct {
	// ID is globally unique (normally the WS-Addressing MessageID).
	ID string `json:"id"`
	// Destination is the delivery target URL.
	Destination string `json:"dest"`
	// Payload is the serialized envelope.
	Payload []byte `json:"payload"`
	// Enqueued is when the message entered the store.
	Enqueued time.Time `json:"enqueued"`
	// Expires is when the message is abandoned. Zero means never.
	Expires time.Time `json:"expires"`
	// Attempts counts delivery tries so far.
	Attempts int `json:"attempts"`
}

// Expired reports whether the message is past its expiration at now.
func (m *Message) Expired(now time.Time) bool {
	return !m.Expires.IsZero() && now.After(m.Expires)
}

// Errors returned by Store operations.
var (
	ErrDuplicate = errors.New("store: duplicate message id")
	ErrNotFound  = errors.New("store: message not found")
)

// Store is a concurrent message store with optional write-ahead logging.
type Store struct {
	clk clock.Clock

	mu     sync.Mutex
	byID   map[string]*Message
	byDest map[string][]string // insertion-ordered IDs per destination
	wal    io.Writer
	walF   *os.File

	// counters
	expired int64
}

// New returns an in-memory store on clk.
func New(clk clock.Clock) *Store {
	if clk == nil {
		clk = clock.Wall
	}
	return &Store{
		clk:    clk,
		byID:   make(map[string]*Message),
		byDest: make(map[string][]string),
	}
}

// walRecord is one log line: an upsert or a delete.
type walRecord struct {
	Op  string   `json:"op"` // "put", "del", "att"
	Msg *Message `json:"msg,omitempty"`
	ID  string   `json:"id,omitempty"`
}

// OpenFile returns a store backed by a JSON-lines append log at path,
// replaying any existing log into memory first.
func OpenFile(clk clock.Clock, path string) (*Store, error) {
	s := New(clk)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	if err := s.replay(f); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: seek %s: %w", path, err)
	}
	s.wal = f
	s.walF = f
	return s, nil
}

// Close releases the backing file, if any.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.walF != nil {
		err := s.walF.Close()
		s.walF = nil
		s.wal = nil
		return err
	}
	return nil
}

func (s *Store) replay(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("store: corrupt log line: %w", err)
		}
		switch rec.Op {
		case "put":
			if rec.Msg != nil {
				s.insertLocked(rec.Msg)
			}
		case "del":
			s.removeLocked(rec.ID)
		case "att":
			if m := s.byID[rec.ID]; m != nil {
				m.Attempts++
			}
		}
	}
	return sc.Err()
}

func (s *Store) log(rec walRecord) {
	if s.wal == nil {
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	s.wal.Write(append(b, '\n'))
}

// Put stores a message. The ID must be unique among live messages.
func (s *Store) Put(m *Message) error {
	if m.ID == "" {
		return errors.New("store: empty message id")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.byID[m.ID]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicate, m.ID)
	}
	if m.Enqueued.IsZero() {
		m.Enqueued = s.clk.Now()
	}
	cp := *m
	cp.Payload = append([]byte(nil), m.Payload...)
	s.insertLocked(&cp)
	s.log(walRecord{Op: "put", Msg: &cp})
	return nil
}

func (s *Store) insertLocked(m *Message) {
	s.byID[m.ID] = m
	s.byDest[m.Destination] = append(s.byDest[m.Destination], m.ID)
}

// Get returns a copy of the message with the given ID.
func (s *Store) Get(id string) (*Message, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	cp := *m
	cp.Payload = append([]byte(nil), m.Payload...)
	return &cp, nil
}

// Delete removes a message (after successful delivery or expiry).
func (s *Store) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byID[id]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	s.removeLocked(id)
	s.log(walRecord{Op: "del", ID: id})
	return nil
}

func (s *Store) removeLocked(id string) {
	m, ok := s.byID[id]
	if !ok {
		return
	}
	delete(s.byID, id)
	ids := s.byDest[m.Destination]
	for i, x := range ids {
		if x == id {
			s.byDest[m.Destination] = append(ids[:i], ids[i+1:]...)
			break
		}
	}
	if len(s.byDest[m.Destination]) == 0 {
		delete(s.byDest, m.Destination)
	}
}

// MarkAttempt increments the delivery attempt counter.
func (s *Store) MarkAttempt(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.byID[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	m.Attempts++
	s.log(walRecord{Op: "att", ID: id})
	return nil
}

// PendingFor returns copies of live (non-expired) messages queued for
// destination, in insertion order, up to max (0 = all).
func (s *Store) PendingFor(destination string, max int) []*Message {
	now := s.clk.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Message
	for _, id := range s.byDest[destination] {
		m := s.byID[id]
		if m == nil || m.Expired(now) {
			continue
		}
		cp := *m
		cp.Payload = append([]byte(nil), m.Payload...)
		out = append(out, &cp)
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}

// Destinations returns all destinations with live pending messages.
func (s *Store) Destinations() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.byDest))
	for d := range s.byDest {
		out = append(out, d)
	}
	return out
}

// Sweep removes every expired message and returns how many were dropped.
// Callers run it periodically (the "expiration time" behaviour the paper
// wanted from its DB).
func (s *Store) Sweep() int {
	now := s.clk.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	var dead []string
	for id, m := range s.byID {
		if m.Expired(now) {
			dead = append(dead, id)
		}
	}
	for _, id := range dead {
		s.removeLocked(id)
		s.log(walRecord{Op: "del", ID: id})
	}
	s.expired += int64(len(dead))
	return len(dead)
}

// Len returns the number of live messages.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byID)
}

// ExpiredTotal returns the cumulative number of swept messages.
func (s *Store) ExpiredTotal() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.expired
}
