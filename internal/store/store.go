// Package store is the message store behind reliable ("hold/retry")
// delivery and durable mailboxes. The paper's future-work section proposes
// exactly this: "improve forwarding service by adding hold/retry on
// delivery ... with messages stored in DB with expiration time" (they
// planned MySQL; an embedded write-ahead log with an in-memory index
// preserves the behaviour — durable enqueue, expiry, replay on restart —
// without an external database).
//
// Durability rides internal/wal: every mutation is appended to the
// segmented, checksummed log BEFORE the in-memory index changes, and the
// append error — if any — is returned to the caller, so Put/Delete/
// MarkAttempt cannot report success for a record that never reached the
// log. Open replays the log on start; a torn tail from a crash
// mid-append is truncated away by the WAL layer, never fatal. When the
// log grows past roughly twice the live state, the store compacts it: a
// snapshot of the live messages becomes the new base segment and the
// retired segments are deleted.
//
// The JSON-lines format of earlier versions survives only as a one-shot
// migration: OpenFile on a legacy log replays it tolerantly (a corrupt
// FINAL line is a torn tail and is dropped; corruption earlier is an
// error), snapshots the result into the WAL directory at path+".wal",
// and removes the JSON file. The migration is idempotent — the JSON file
// is deleted only after the snapshot is durably installed, so a crash
// anywhere mid-migration just redoes it from the JSON on the next open.
package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/wal"
)

// Message is one stored message awaiting delivery.
type Message struct {
	// ID is globally unique (normally the WS-Addressing MessageID).
	ID string `json:"id"`
	// Destination is the delivery target URL.
	Destination string `json:"dest"`
	// Payload is the serialized envelope.
	Payload []byte `json:"payload"`
	// Enqueued is when the message entered the store.
	Enqueued time.Time `json:"enqueued"`
	// Expires is when the message is abandoned. Zero means never.
	Expires time.Time `json:"expires"`
	// Attempts counts delivery tries so far.
	Attempts int `json:"attempts"`
}

// Expired reports whether the message is past its expiration at now.
func (m *Message) Expired(now time.Time) bool {
	return !m.Expires.IsZero() && now.After(m.Expires)
}

// Errors returned by Store operations.
var (
	ErrDuplicate = errors.New("store: duplicate message id")
	ErrNotFound  = errors.New("store: message not found")
)

// WAL record ops. One record = op byte + op-specific body; records are
// framed and checksummed by the wal layer.
const (
	opPut = 'p' // flags, ID, Destination, Enqueued, [Expires], Attempts, payload
	opDel = 'd' // ID
	opAtt = 'a' // ID
)

// putFlagExpires marks a put record carrying an Expires timestamp.
// Enqueued needs no flag — Put always stamps it — but Expires' zero
// value means "never" and must round-trip as exactly that (UnixNano of
// the zero time.Time is garbage, and nano 0 is a legitimate Virtual
// clock instant, so presence must be explicit).
const putFlagExpires = 0x01

// Store is a concurrent message store, optionally durable via a
// write-ahead log.
type Store struct {
	clk clock.Clock

	mu     sync.Mutex
	byID   map[string]*Message
	byDest map[string][]string // insertion-ordered IDs per destination
	log    *wal.Log            // nil for a purely in-memory store

	// Staging for the zero-alloc WAL encode: the encode callback is one
	// cached method value (encFn) reading these fields, set under mu
	// right before each append, so the hot path builds no closures.
	encOp  byte
	encMsg *Message
	encID  string
	encFn  func([]byte) []byte

	// liveBytes approximates the encoded size of the live state; the
	// log compacts when it exceeds roughly twice this.
	liveBytes int64
	compactAt int64

	// counters
	expired int64
}

// defaultCompactAt is the log size below which compaction never
// triggers, regardless of garbage ratio — tiny logs aren't worth the
// snapshot churn.
const defaultCompactAt = 1 << 20

// New returns an in-memory store on clk.
func New(clk clock.Clock) *Store {
	if clk == nil {
		clk = clock.Wall
	}
	s := &Store{
		clk:       clk,
		byID:      make(map[string]*Message),
		byDest:    make(map[string][]string),
		compactAt: defaultCompactAt,
	}
	s.encFn = s.encodeStaged
	return s
}

// Options tunes a durable store.
type Options struct {
	// WAL configures the backing log (sync policy, segment size, clock —
	// the store's clock is used when unset).
	WAL wal.Config
	// CompactAt is the log size (bytes) above which auto-compaction may
	// run; the log must also exceed twice the live state. Default 1 MiB.
	CompactAt int64
}

// Open returns a store durably backed by a write-ahead log in dir
// (created if absent; the parent must exist), replaying any existing
// log into memory first.
func Open(clk clock.Clock, dir string, opts Options) (*Store, error) {
	s := New(clk)
	if opts.CompactAt > 0 {
		s.compactAt = opts.CompactAt
	}
	cfg := opts.WAL
	if cfg.Clock == nil {
		cfg.Clock = s.clk
	}
	l, err := wal.Open(dir, cfg, s.applyRecord)
	if err != nil {
		return nil, err
	}
	s.log = l
	return s, nil
}

// OpenFile opens the durable store whose write-ahead log lives in the
// directory path+".wal". A legacy JSON-lines log at path itself is
// migrated: replayed (tolerating a torn final line), snapshotted into
// the WAL, and removed.
func OpenFile(clk clock.Clock, path string) (*Store, error) {
	legacy, readErr := os.ReadFile(path)
	if readErr != nil && !errors.Is(readErr, fs.ErrNotExist) {
		return nil, fmt.Errorf("store: open %s: %w", path, readErr)
	}
	s, err := Open(clk, path+".wal", Options{})
	if err != nil {
		return nil, err
	}
	if readErr != nil { // no legacy log; the WAL is the state
		return s, nil
	}
	if err := s.migrateJSON(legacy); err != nil {
		s.Close()
		return nil, err
	}
	if err := os.Remove(path); err != nil {
		s.Close()
		return nil, fmt.Errorf("store: retire legacy log %s: %w", path, err)
	}
	return s, nil
}

// Close syncs and releases the backing log, if any.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log != nil {
		err := s.log.Close()
		s.log = nil
		return err
	}
	return nil
}

// Sync forces any buffered WAL appends to disk (a no-op for in-memory
// stores and under wal.SyncAlways).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	return s.log.Sync()
}

// WAL exposes the backing log's counters (appends, syncs, rotations,
// compactions, torn-tail truncations) for stats surfaces and tests.
// Nil for in-memory stores.
func (s *Store) WAL() *wal.Log { return s.log }

// walRecord is one line of the LEGACY JSON log, kept for migration.
type walRecord struct {
	Op  string   `json:"op"` // "put", "del", "att"
	Msg *Message `json:"msg,omitempty"`
	ID  string   `json:"id,omitempty"`
}

// migrateJSON replays a legacy JSON-lines log over whatever state the
// WAL held (a crashed earlier migration's partial writes are discarded
// wholesale — the JSON is still the source of truth until it is
// removed), then compacts so the WAL's base snapshot IS the migrated
// state.
func (s *Store) migrateJSON(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byID = make(map[string]*Message)
	s.byDest = make(map[string][]string)
	s.liveBytes = 0
	if err := s.replayJSONLocked(data); err != nil {
		return err
	}
	return s.compactLocked()
}

// replayJSONLocked applies legacy log lines to the in-memory state
// only. A line that fails to parse is fatal UNLESS it is the final
// non-empty line — that is the torn tail of a crash mid-append, and
// recovery means dropping it, not refusing to start.
func (s *Store) replayJSONLocked(data []byte) error {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	var torn bool
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if torn {
			// A parse failure followed by more content is not a torn
			// tail; it is corruption in the middle of the log.
			return errors.New("store: corrupt legacy log line")
		}
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			torn = true
			continue
		}
		switch rec.Op {
		case "put":
			if rec.Msg != nil {
				if _, dup := s.byID[rec.Msg.ID]; !dup {
					s.insertLocked(rec.Msg)
				}
			}
		case "del":
			s.removeLocked(rec.ID)
		case "att":
			if m := s.byID[rec.ID]; m != nil {
				m.Attempts++
			}
		}
	}
	return sc.Err()
}

// encodeStaged is the WAL encode callback: it appends the staged
// operation (encOp/encMsg/encID, set under mu) to dst. One method value
// of it is cached in encFn so appends allocate nothing.
func (s *Store) encodeStaged(dst []byte) []byte {
	switch s.encOp {
	case opPut:
		m := s.encMsg
		var flags byte
		if !m.Expires.IsZero() {
			flags |= putFlagExpires
		}
		dst = append(dst, opPut, flags)
		dst = binary.AppendUvarint(dst, uint64(len(m.ID)))
		dst = append(dst, m.ID...)
		dst = binary.AppendUvarint(dst, uint64(len(m.Destination)))
		dst = append(dst, m.Destination...)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(m.Enqueued.UnixNano()))
		if flags&putFlagExpires != 0 {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(m.Expires.UnixNano()))
		}
		dst = binary.AppendUvarint(dst, uint64(m.Attempts))
		dst = append(dst, m.Payload...)
	default: // opDel, opAtt: just the ID
		dst = append(dst, s.encOp)
		dst = append(dst, s.encID...)
	}
	return dst
}

// errBadRecord marks a WAL record that passed its checksum but does not
// decode — a format version skew, not bit rot.
var errBadRecord = errors.New("store: undecodable WAL record")

// applyRecord is the WAL replay callback. rec aliases the reader's
// buffer; everything retained is copied.
func (s *Store) applyRecord(rec []byte) error {
	if len(rec) == 0 {
		return errBadRecord
	}
	op, rest := rec[0], rec[1:]
	switch op {
	case opPut:
		m, err := decodePut(rest)
		if err != nil {
			return err
		}
		if _, dup := s.byID[m.ID]; !dup {
			s.insertLocked(m)
		}
	case opDel:
		s.removeLocked(string(rest))
	case opAtt:
		if m := s.byID[string(rest)]; m != nil {
			m.Attempts++
		}
	default:
		return fmt.Errorf("%w: op %q", errBadRecord, op)
	}
	return nil
}

// decodePut decodes a put record body into a freshly allocated Message.
func decodePut(b []byte) (*Message, error) {
	if len(b) < 1 {
		return nil, errBadRecord
	}
	flags := b[0]
	b = b[1:]
	id, b, ok := takeString(b)
	if !ok {
		return nil, errBadRecord
	}
	dest, b, ok := takeString(b)
	if !ok {
		return nil, errBadRecord
	}
	if len(b) < 8 {
		return nil, errBadRecord
	}
	enq := int64(binary.LittleEndian.Uint64(b))
	b = b[8:]
	var expires time.Time
	if flags&putFlagExpires != 0 {
		if len(b) < 8 {
			return nil, errBadRecord
		}
		expires = time.Unix(0, int64(binary.LittleEndian.Uint64(b)))
		b = b[8:]
	}
	attempts, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, errBadRecord
	}
	b = b[n:]
	return &Message{
		ID:          id,
		Destination: dest,
		Payload:     append([]byte(nil), b...),
		Enqueued:    time.Unix(0, enq),
		Expires:     expires,
		Attempts:    int(attempts),
	}, nil
}

// takeString reads a uvarint-length-prefixed string, copying it out of
// the record buffer.
func takeString(b []byte) (string, []byte, bool) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || uint64(len(b)-sz) < n {
		return "", nil, false
	}
	return string(b[sz : sz+int(n)]), b[sz+int(n):], true
}

// appendStagedLocked writes the staged operation to the WAL, if one is
// attached. Called with mu held; the store mutates memory only after
// the log accepted the record (write-ahead), so a returned error means
// the operation did not happen.
func (s *Store) appendStagedLocked() error {
	if s.log == nil {
		return nil
	}
	return s.log.Append(s.encFn)
}

// Put stores a message. The ID must be unique among live messages. With
// a WAL attached, the record is on the log (durable per the configured
// sync policy) before Put returns nil; a log error is returned and the
// message is NOT stored.
func (s *Store) Put(m *Message) error {
	if m.ID == "" {
		return errors.New("store: empty message id")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.byID[m.ID]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicate, m.ID)
	}
	if m.Enqueued.IsZero() {
		m.Enqueued = s.clk.Now()
	}
	cp := *m
	cp.Payload = append([]byte(nil), m.Payload...)
	s.encOp, s.encMsg = opPut, &cp
	if err := s.appendStagedLocked(); err != nil {
		return err
	}
	s.insertLocked(&cp)
	return nil
}

func (s *Store) insertLocked(m *Message) {
	s.byID[m.ID] = m
	s.byDest[m.Destination] = append(s.byDest[m.Destination], m.ID)
	s.liveBytes += liveSize(m)
}

// liveSize approximates a message's encoded record size for the
// compaction trigger.
func liveSize(m *Message) int64 {
	return int64(32 + len(m.ID) + len(m.Destination) + len(m.Payload))
}

// Get returns a copy of the message with the given ID.
func (s *Store) Get(id string) (*Message, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	cp := *m
	cp.Payload = append([]byte(nil), m.Payload...)
	return &cp, nil
}

// Delete removes a message (after successful delivery or expiry). With
// a WAL attached, a log error is returned and the message stays.
func (s *Store) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byID[id]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	s.encOp, s.encID = opDel, id
	if err := s.appendStagedLocked(); err != nil {
		return err
	}
	s.removeLocked(id)
	s.maybeCompactLocked()
	return nil
}

func (s *Store) removeLocked(id string) {
	m, ok := s.byID[id]
	if !ok {
		return
	}
	delete(s.byID, id)
	s.liveBytes -= liveSize(m)
	ids := s.byDest[m.Destination]
	for i, x := range ids {
		if x == id {
			s.byDest[m.Destination] = append(ids[:i], ids[i+1:]...)
			break
		}
	}
	if len(s.byDest[m.Destination]) == 0 {
		delete(s.byDest, m.Destination)
	}
}

// MarkAttempt increments the delivery attempt counter. With a WAL
// attached, a log error is returned and the counter is unchanged.
func (s *Store) MarkAttempt(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.byID[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	s.encOp, s.encID = opAtt, id
	if err := s.appendStagedLocked(); err != nil {
		return err
	}
	m.Attempts++
	return nil
}

// PendingFor returns copies of live (non-expired) messages queued for
// destination, in insertion order, up to max (0 = all).
func (s *Store) PendingFor(destination string, max int) []*Message {
	now := s.clk.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Message
	for _, id := range s.byDest[destination] {
		m := s.byID[id]
		if m == nil || m.Expired(now) {
			continue
		}
		cp := *m
		cp.Payload = append([]byte(nil), m.Payload...)
		out = append(out, &cp)
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}

// Destinations returns all destinations with live pending messages.
func (s *Store) Destinations() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.byDest))
	for d := range s.byDest {
		out = append(out, d)
	}
	return out
}

// Sweep removes every expired message and returns how many were dropped.
// Callers run it periodically (the "expiration time" behaviour the paper
// wanted from its DB). A WAL error mid-sweep does not stop the in-memory
// removal: expiry is re-derived from timestamps on replay, so an
// unlogged expiry delete self-heals on the next open (and the log's
// sticky error still surfaces through the next Put/Delete/MarkAttempt).
func (s *Store) Sweep() int {
	now := s.clk.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	var dead []string
	for id, m := range s.byID {
		if m.Expired(now) {
			dead = append(dead, id)
		}
	}
	for _, id := range dead {
		s.encOp, s.encID = opDel, id
		_ = s.appendStagedLocked()
		s.removeLocked(id)
	}
	s.expired += int64(len(dead))
	if len(dead) > 0 {
		s.maybeCompactLocked()
	}
	return len(dead)
}

// maybeCompactLocked compacts the log once it is both past the
// CompactAt floor and more than half garbage. Compaction failures are
// not surfaced here — the log's sticky error resurfaces on the next
// mutating call.
func (s *Store) maybeCompactLocked() {
	if s.log == nil {
		return
	}
	size := s.log.Size()
	if size < s.compactAt || size < 2*s.liveBytes {
		return
	}
	_ = s.compactLocked()
}

// compactLocked snapshots the live state into a fresh WAL base segment.
func (s *Store) compactLocked() error {
	if s.log == nil {
		return nil
	}
	return s.log.Compact(func(w *wal.Snapshot) error {
		for _, ids := range s.byDest {
			for _, id := range ids {
				m := s.byID[id]
				if m == nil {
					continue
				}
				s.encOp, s.encMsg = opPut, m
				if err := w.Append(s.encFn); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// Compact forces a snapshot compaction of the backing log (no-op for
// in-memory stores).
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

// Len returns the number of live messages.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byID)
}

// ExpiredTotal returns the cumulative number of swept messages.
func (s *Store) ExpiredTotal() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.expired
}
